/**
 * @file
 * Advisor-service soak and overload-resilience driver (robustness
 * extension).  An open-loop load generator drives AdvisorService
 * through the failure modes the service is designed to survive, and
 * gates on the observable outcomes:
 *
 *   steady    Poisson arrivals from a small mix pool - the cache
 *             warms, answers are exact/cached, nothing sheds;
 *   burst     a back-to-back volley of cache-busting unique mixes at
 *             many times the steady rate - the bounded queue sheds
 *             (oldest first) and served p99 stays bounded instead of
 *             building an unbounded backlog;
 *   slow      a SlowPathInjector stalls every rollout decision point
 *             past the request deadline - rollouts degrade to
 *             table-only answers and the circuit breaker opens;
 *   recover   the stall is removed - a half-open probe recloses the
 *             breaker;
 *   drain     SIGTERM: stop admitting, finish in-flight work within
 *             the drain deadline, persist the warm-start snapshot
 *             through snapshot::Keeper, and prove a restarted service
 *             serves a bit-identical cached decision.
 *
 * `--smoke` is the deterministic self-checking mode ctest runs as
 * advisor_soak_smoke (a few seconds); the default run is the same
 * campaign scaled up.  A second SIGINT/SIGTERM during shutdown skips
 * the snapshot and exits immediately with code 131 (the double-signal
 * escape hatch; a clean interrupt exits 130).
 *
 * Flags:
 *   --smoke                  short deterministic gate mode
 *   --seed=<n>               load-generator seed (default 1)
 *   --telemetry-out=<dir>    export service metrics (CSV + JSON) and
 *                            the BENCH_advisor_soak.json perf record
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "fault/slow_path.hh"
#include "serve/advisor.hh"
#include "serve/service.hh"
#include "serve/wire.hh"
#include "snapshot/keeper.hh"
#include "snapshot/serializer.hh"
#include "telemetry/bench_record.hh"
#include "telemetry/metrics.hh"
#include "telemetry/sinks.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/status.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::serve;

/** Exit code of the double-signal escape hatch (one signal: 130). */
constexpr int kForcedExitCode = 131;

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void
onSignal(int)
{
    // Second signal: the user really means it.  Skip the snapshot and
    // exit immediately (async-signal-safe, hence _exit).
    if (g_interrupted != 0)
        _exit(kForcedExitCode);
    g_interrupted = 1;
}

struct SoakScale
{
    std::size_t steadyRequests = 120;
    double steadyQps = 150.0;
    std::size_t burstRequests = 400;
    std::size_t slowRequests = 8;
    std::size_t recoverRequests = 4;
};

SoakScale
fullScale()
{
    SoakScale scale;
    scale.steadyRequests = 1200;
    scale.steadyQps = 300.0;
    scale.burstRequests = 4000;
    scale.slowRequests = 24;
    scale.recoverRequests = 8;
    return scale;
}

ServiceConfig
soakServiceConfig()
{
    ServiceConfig config;
    config.workers = 2;
    config.queueCapacity = 16;
    config.defaultDeadlineMicros = 10'000;
    config.maxDeadlineMicros = 250'000;
    return config;
}

AdvisorConfig
soakAdvisorConfig(std::uint64_t seed)
{
    AdvisorConfig config;
    config.rolloutNodes = 16;
    config.rolloutJobs = 24;
    config.rolloutHorizonSeconds = 3600.0;
    config.cacheCapacity = 4096;
    config.seed = seed;
    config.breaker.openAfterFailures = 5;
    config.breaker.cooldownMicros = 200'000;
    return config;
}

/** The steady-phase mix pool (cacheable, repeating patterns). */
std::vector<AdvisorRequest>
mixPool()
{
    std::vector<AdvisorRequest> pool;
    for (unsigned i = 0; i < 12; ++i) {
        AdvisorRequest request;
        MixClass narrow;
        narrow.nodes = 1 + (i % 4);
        narrow.usageClass = i % 3;
        narrow.runtimeSeconds = 600.0 + 120.0 * (i % 5);
        narrow.weight = 2.0;
        MixClass wide;
        wide.nodes = 8 + 2 * (i % 3);
        wide.usageClass = (i + 1) % 3;
        wide.runtimeSeconds = 1800.0;
        wide.weight = 1.0;
        request.mix = {narrow, wide};
        pool.push_back(request);
    }
    return pool;
}

/** A cache-busting unique mix (distinct runtime quantum per n). */
AdvisorRequest
uniqueMix(std::uint64_t n)
{
    AdvisorRequest request;
    MixClass c;
    c.nodes = 1 + static_cast<std::uint32_t>(n % 8);
    c.usageClass = static_cast<std::uint32_t>(n % 2); // margin-eligible
    // 61 s steps keep every request in its own cache-key quantum.
    c.runtimeSeconds = 300.0 + 61.0 * static_cast<double>(n % 100'000);
    c.weight = 1.0;
    request.mix = {c};
    return request;
}

/** Thread-safe response tally shared by every phase. */
struct Tally
{
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t responses = 0;
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t hardFailures = 0; ///< neither ok nor shed: a bug
    std::uint64_t byQuality[3] = {0, 0, 0};

    void
    record(const ServedResponse &r)
    {
        std::lock_guard<std::mutex> lock(mu);
        ++responses;
        if (r.status.ok()) {
            ++ok;
            ++byQuality[static_cast<unsigned>(r.decision.quality)];
        } else if (r.shed) {
            ++shed;
        } else if (r.status.code() !=
                   util::StatusCode::kInvalidArgument) {
            ++hardFailures;
        }
        cv.notify_all();
    }

    ResponseCallback
    callback()
    {
        return [this](const ServedResponse &r) { record(r); };
    }

    std::uint64_t
    total()
    {
        std::lock_guard<std::mutex> lock(mu);
        return responses;
    }

    /** Wait (bounded) until `n` responses have arrived. */
    bool
    awaitTotal(std::uint64_t n)
    {
        std::unique_lock<std::mutex> lock(mu);
        return cv.wait_for(lock, std::chrono::seconds(30),
                           [&] { return responses >= n; });
    }
};

/**
 * One submit-and-wait round trip, tallied.  The slow/recover phases
 * are deliberately closed-loop so every request reaches the engine.
 */
ServedResponse
submitAndWait(AdvisorService &service, Tally &tally,
              const AdvisorRequest &request)
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ServedResponse out;
    service.submit(request, [&](const ServedResponse &r) {
        tally.record(r);
        std::lock_guard<std::mutex> lock(mu);
        out = r;
        done = true;
        cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return done; });
    return out;
}

int
run(bool smoke, std::uint64_t seed, const std::string &telemetry_dir)
{
    const telemetry::WallTimer timer;
    const SoakScale scale = smoke ? SoakScale{} : fullScale();
    util::Rng rng(seed);

    int failures = 0;
    const auto gate = [&failures](bool ok, const char *what) {
        std::printf("soak: %-52s %s\n", what, ok ? "PASS" : "FAIL");
        failures += ok ? 0 : 1;
    };

    fault::SlowPathInjector injector;
    const std::string keeper_path =
        telemetry_dir.empty()
            ? "advisor_soak_state.snap"
            : telemetry_dir + "/advisor_soak_state.snap";
    if (!telemetry_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(telemetry_dir, ec);
        if (ec)
            util::fatal("advisor_soak: cannot create '%s': %s",
                        telemetry_dir.c_str(), ec.message().c_str());
    }
    snapshot::Keeper keeper(keeper_path, 2);

    std::uint64_t next_id = 1;
    std::uint64_t submitted = 0;
    Tally tally;
    std::vector<std::uint8_t> preKillCachedBytes;
    ServiceCounters finalCounters;
    AdvisorStats finalStats;
    std::uint64_t breakerOpened = 0, breakerHalfOpened = 0,
                  breakerReclosed = 0;
    std::uint64_t p50 = 0, p99 = 0;

    {
        AdvisorService service(soakServiceConfig(),
                               soakAdvisorConfig(seed));
        service.engine().setSlowPathInjector(&injector);

        // ---- Phase 0: warm the pool (closed loop). ----
        for (const AdvisorRequest &pattern : mixPool()) {
            AdvisorRequest request = pattern;
            request.id = next_id++;
            request.deadlineMicros = 100'000;
            ++submitted;
            (void)submitAndWait(service, tally, request);
        }

        // ---- Phase 1: steady state (open-loop Poisson). ----
        const std::vector<AdvisorRequest> pool = mixPool();
        for (std::size_t i = 0; i < scale.steadyRequests; ++i) {
            AdvisorRequest request = pool[i % pool.size()];
            request.id = next_id++;
            request.deadlineMicros = 100'000;
            ++submitted;
            service.submit(request, tally.callback());
            // Open loop: arrivals follow the schedule, not
            // completions (capped so a pathological draw cannot
            // stall the campaign).
            const double gap = rng.exponential(scale.steadyQps);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                std::min(gap, 10.0 / scale.steadyQps)));
        }
        tally.awaitTotal(submitted);
        const ServiceCounters afterSteady = service.counters();
        gate(afterSteady.totalShed() == 0,
             "steady: no shedding at the nominal rate");

        // ---- Phase 2: burst of cache-busting unique mixes. ----
        // The overload is structural, not a scheduling race: the
        // injector gate wedges the rollout path, so the volley floods
        // a bounded queue whose workers cannot drain it - no matter
        // how fast this machine is or how starved a loaded CI runner
        // leaves the process.  (Without the wedge, a starved run can
        // blow every deadline instead: each answer degrades to a
        // fast table lookup and the queue never fills.)
        injector.armGate();
        for (std::size_t i = 0; i < scale.burstRequests; ++i) {
            AdvisorRequest request = uniqueMix(1'000'000 + i);
            request.id = next_id++;
            ++submitted;
            service.submit(request, tally.callback());
        }
        injector.release();
        tally.awaitTotal(submitted);
        const ServiceCounters afterBurst = service.counters();
        gate(afterBurst.totalShed() > afterSteady.totalShed(),
             "burst: overload engaged the shedder");
        p50 = service.latencyQuantileMicros(0.50);
        p99 = service.latencyQuantileMicros(0.99);
        // Shedding must keep served latency bounded by the deadline
        // scale (log2 buckets overshoot by at most 2x), not by the
        // depth of an unbounded backlog.
        gate(p99 <= (1u << 19),
             "burst: served p99 stays bounded (< 0.53 s)");

        // ---- Phase 3: slow rollouts open the breaker. ----
        const std::uint64_t openedBefore =
            service.engine().breaker().openedCount();
        injector.armDelay(30'000); // 30 ms/event vs 10 ms deadlines
        for (std::size_t i = 0; i < scale.slowRequests; ++i) {
            AdvisorRequest request = uniqueMix(2'000'000 + i);
            request.id = next_id++;
            request.allowCached = false;
            ++submitted;
            (void)submitAndWait(service, tally, request);
        }
        injector.disarm();
        gate(service.engine().stats().rolloutsDeadlineHit > 0,
             "slow: stalled rollouts degraded at the deadline");
        gate(service.engine().breaker().openedCount() > openedBefore,
             "slow: consecutive timeouts opened the breaker");

        // ---- Phase 4: recovery recloses the breaker. ----
        std::this_thread::sleep_for(std::chrono::microseconds(
            soakAdvisorConfig(seed).breaker.cooldownMicros + 50'000));
        for (std::size_t i = 0; i < scale.recoverRequests; ++i) {
            AdvisorRequest request = uniqueMix(3'000'000 + i);
            request.id = next_id++;
            request.allowCached = false;
            request.deadlineMicros = 200'000;
            ++submitted;
            (void)submitAndWait(service, tally, request);
        }
        gate(service.engine().breaker().halfOpenedCount() > 0,
             "recover: a half-open probe was admitted");
        gate(service.engine().breaker().reclosedCount() > 0 &&
                 service.engine().breaker().state() ==
                     CircuitBreaker::State::kClosed,
             "recover: the probe reclosed the breaker");

        // ---- Phase 5: SIGTERM -> drain -> snapshot. ----
        // Pin one known-warm decision first so the restart can be
        // checked bit for bit.
        AdvisorRequest warm = uniqueMix(4'000'000);
        warm.id = 9999;
        warm.allowCached = false;
        warm.deadlineMicros = 200'000;
        ++submitted;
        const ServedResponse exact =
            submitAndWait(service, tally, warm);
        gate(exact.status.ok() &&
                 exact.decision.quality == Quality::kExact,
             "drain: warm-up decision is exact");
        warm.allowCached = true;
        ++submitted;
        const ServedResponse cached =
            submitAndWait(service, tally, warm);
        gate(cached.status.ok() &&
                 cached.decision.quality == Quality::kCached,
             "drain: warm-up decision replays from the cache");
        preKillCachedBytes = encodeDecision(cached.decision);

        if (smoke)
            std::raise(SIGTERM); // exercise the real signal path
        const auto drainStart = std::chrono::steady_clock::now();
        while (g_interrupted == 0 &&
               std::chrono::steady_clock::now() - drainStart <
                   std::chrono::seconds(1))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));

        const util::Status drained =
            service.drainAndSnapshot(keeper, 2'000'000);
        gate(drained.ok(), "drain: clean drain within the deadline");
        finalCounters = service.counters();
        finalStats = service.engine().stats();
        breakerOpened = service.engine().breaker().openedCount();
        breakerHalfOpened =
            service.engine().breaker().halfOpenedCount();
        breakerReclosed = service.engine().breaker().reclosedCount();
    }

    // ---- Phase 6: restart from the warm-start snapshot. ----
    {
        AdvisorService restarted(soakServiceConfig(),
                                 soakAdvisorConfig(seed));
        const util::Result<snapshot::Keeper::Loaded> loaded =
            keeper.loadLatestValid(snapshot::kAdvisorStateKind);
        gate(loaded.ok(), "restart: warm-start snapshot loads");
        if (loaded.ok()) {
            const util::Status restored =
                restarted.engine().restoreState(loaded.value().payload);
            gate(restored.ok(), "restart: engine state restores");
            AdvisorRequest warm = uniqueMix(4'000'000);
            warm.id = 9999;
            warm.deadlineMicros = 200'000;
            ++submitted;
            const ServedResponse replay =
                submitAndWait(restarted, tally, warm);
            gate(replay.status.ok() &&
                     replay.decision.quality == Quality::kCached &&
                     encodeDecision(replay.decision) ==
                         preKillCachedBytes,
                 "restart: cached decision is bit-identical");
        }
        restarted.beginDrain();
        (void)restarted.awaitDrain(1'000'000);
    }

    std::uint64_t hard = 0, answered = 0, sheds = 0;
    {
        std::lock_guard<std::mutex> lock(tally.mu);
        hard = tally.hardFailures;
        answered = tally.responses;
        sheds = tally.shed;
        std::printf(
            "\nresponses: %llu (ok %llu, shed %llu, hard-fail %llu)\n"
            "quality:   exact %llu, cached %llu, degraded %llu\n",
            static_cast<unsigned long long>(tally.responses),
            static_cast<unsigned long long>(tally.ok),
            static_cast<unsigned long long>(tally.shed),
            static_cast<unsigned long long>(tally.hardFailures),
            static_cast<unsigned long long>(tally.byQuality[0]),
            static_cast<unsigned long long>(tally.byQuality[1]),
            static_cast<unsigned long long>(tally.byQuality[2]));
    }
    std::printf("served latency: p50 %llu us, p99 %llu us (log2 upper "
                "bounds)\n",
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p99));
    std::printf("shed: queue_full %llu, queue_expired %llu, draining "
                "%llu, retry_denied %llu\n",
                static_cast<unsigned long long>(
                    finalCounters.shedQueueFull),
                static_cast<unsigned long long>(
                    finalCounters.shedQueueExpired),
                static_cast<unsigned long long>(
                    finalCounters.shedDraining),
                static_cast<unsigned long long>(
                    finalCounters.shedRetryDenied));
    std::printf("breaker: opened %llu, half-opened %llu, reclosed "
                "%llu\n",
                static_cast<unsigned long long>(breakerOpened),
                static_cast<unsigned long long>(breakerHalfOpened),
                static_cast<unsigned long long>(breakerReclosed));

    gate(hard == 0, "soak: zero non-shed failures");
    gate(answered == submitted,
         "soak: every submitted request was answered");

    // ---- Telemetry / perf-trajectory export. ----
    if (!telemetry_dir.empty()) {
        telemetry::Registry registry;
        registry.counter("advisor.soak_submitted").set(submitted);
        registry.counter("advisor.soak_answered").set(answered);
        registry.counter("advisor.soak_shed").set(sheds);
        registry.gauge("advisor.soak_p50_micros")
            .set(static_cast<double>(p50));
        registry.gauge("advisor.soak_p99_micros")
            .set(static_cast<double>(p99));
        registry.counter("advisor.shed_queue_full")
            .set(finalCounters.shedQueueFull);
        registry.counter("advisor.shed_queue_expired")
            .set(finalCounters.shedQueueExpired);
        registry.counter("advisor.shed_draining")
            .set(finalCounters.shedDraining);
        registry.counter("advisor.shed_retry_denied")
            .set(finalCounters.shedRetryDenied);
        registry.counter("advisor.decisions_exact")
            .set(finalStats.decisionsExact);
        registry.counter("advisor.decisions_cached")
            .set(finalStats.decisionsCached);
        registry.counter("advisor.decisions_degraded")
            .set(finalStats.decisionsDegraded);
        registry.counter("advisor.rollouts_deadline_hit")
            .set(finalStats.rolloutsDeadlineHit);
        registry.counter("advisor.breaker_opened").set(breakerOpened);
        registry.counter("advisor.breaker_half_opened")
            .set(breakerHalfOpened);
        registry.counter("advisor.breaker_reclosed")
            .set(breakerReclosed);
        std::string error;
        const std::string csv = telemetry_dir + "/metrics.csv";
        if (!telemetry::writeMetricsCsv(registry, csv, &error))
            util::fatal("advisor_soak: %s", error.c_str());
        const std::string json = telemetry_dir + "/metrics.json";
        if (!telemetry::writeMetricsJson(registry, json, &error))
            util::fatal("advisor_soak: %s", error.c_str());

        telemetry::BenchRecord record;
        record.bench = "advisor_soak";
        record.gitSha = telemetry::currentGitSha();
        record.wallSeconds = timer.seconds();
        record.simSeconds = 0.0;
        record.simEvents = answered;
        record.peakRssBytes = telemetry::currentPeakRssBytes();
        record.threads = soakServiceConfig().workers;
        std::string bench_path;
        if (!telemetry::writeBenchRecord(telemetry_dir, record, &error,
                                         &bench_path))
            util::fatal("advisor_soak: %s", error.c_str());
        std::printf("telemetry: %s, %s, %s\n", csv.c_str(),
                    json.c_str(), bench_path.c_str());
    }

    std::printf("\nadvisor_soak: %d gate(s) failed\n", failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::uint64_t seed = 1;
    std::string telemetry_dir;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        const auto flagValue = [&](const char *name) -> const char * {
            const std::size_t len = std::strlen(name);
            if (std::strncmp(arg, name, len) == 0 && arg[len] == '=')
                return arg + len + 1;
            return nullptr;
        };
        if (std::strcmp(arg, "--smoke") == 0)
            smoke = true;
        else if ((value = flagValue("--seed")))
            seed = std::strtoull(value, nullptr, 10);
        else if ((value = flagValue("--telemetry-out")))
            telemetry_dir = value;
        else {
            std::fprintf(stderr,
                         "usage: advisor_soak [--smoke] [--seed=N] "
                         "[--telemetry-out=DIR]\n"
                         "(second SIGINT/SIGTERM during shutdown "
                         "skips the snapshot; exit code %d)\n",
                         kForcedExitCode);
            return 2;
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    return run(smoke, seed, telemetry_dir);
}
