/**
 * @file
 * Evaluation-grid result cache rows and their CSV wire format.
 *
 * Split out of eval_common so the cache parser can be exercised (and
 * fuzzed) without linking the node simulator: this unit depends only
 * on the traces CSV helpers and util::Status.
 *
 * A result cache is machine-written, so any malformed line means the
 * file is corrupt (truncated write, disk fault, manual edit) and
 * silently skipping it would quietly re-run - or worse, mis-plot -
 * that configuration.  Parsing therefore rejects loudly with a
 * structured Status naming the file, line and field, and enforces
 * resource caps so a corrupt or hostile cache cannot balloon memory.
 */

#ifndef HDMR_BENCH_EVAL_CACHE_HH
#define HDMR_BENCH_EVAL_CACHE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "traces/csv.hh"
#include "util/status.hh"

namespace hdmr::bench
{

/** One evaluated configuration with the stats the figures consume. */
struct EvalRow
{
    std::string benchmark;
    std::string suite;
    std::string hierarchy;    ///< "Hierarchy1" / "Hierarchy2"
    std::string system;       ///< toString(MemorySystemKind)
    unsigned marginMts = 0;
    unsigned usageClass = 0;  ///< 0: <25 %, 1: <50 %, 2: >=50 %
    double execSeconds = 0.0;
    double epiNj = 0.0;
    double dramAccessesPerInstruction = 0.0;
    double busUtilization = 0.0;
    double readBandwidthGBs = 0.0;
    double writeBandwidthGBs = 0.0;
    double commFraction = 0.0;
    double corrections = 0.0;
};

/** Fields per cache record (the EvalRow members, in order). */
inline constexpr std::size_t kEvalCacheFields = 14;

/** Cap on each of the four name fields; real names are < 32 bytes. */
inline constexpr std::size_t kMaxEvalNameBytes = 256;

/** Cap on rows per cache file; real grids are a few thousand rows. */
inline constexpr std::size_t kMaxEvalCacheRows = 1u << 20;

/** One cache record in the parseEvalRow() format. */
std::string serializeEvalRow(const EvalRow &row);

/**
 * Parse one cache record.  Rejects a wrong field count, empty or
 * over-long name fields, non-numeric/non-finite stats and values
 * outside their documented ranges with a Status naming the source,
 * line and field.  *row is default-initialized on error.
 */
util::Status parseEvalRow(const traces::CsvCursor &at,
                          const std::string &line, EvalRow *row);

/**
 * Load a whole cache stream ('#' comments and blank lines skipped).
 * Enforces kMaxCsvLineBytes per line and kMaxEvalCacheRows per file;
 * *rows is cleared on error, never half-filled.
 */
util::Status loadEvalCache(std::istream &in, const std::string &name,
                           std::vector<EvalRow> *rows);

} // namespace hdmr::bench

#endif // HDMR_BENCH_EVAL_CACHE_HH
