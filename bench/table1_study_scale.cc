/**
 * @file
 * Table I: scale of the characterization study vs. prior work.
 */

#include <cstdio>

#include "margin/population.hh"
#include "margin/study.hh"
#include "util/table.hh"

int
main()
{
    using namespace hdmr;

    std::printf("TABLE I: Scale of our study compared to prior works\n");
    util::Table table({"", "DRAM type", "# of modules", "# of chips",
                       "Margin Studied"});
    for (const auto &entry : margin::studyScaleTable()) {
        table.row()
            .cell(entry.work)
            .cell(entry.dramType)
            .cell(entry.modules)
            .cell(entry.chips)
            .cell(entry.marginStudied);
    }
    table.print();

    // Cross-check the headline numbers against the simulated fleet.
    const auto fleet = margin::makeStudyFleet(2021);
    unsigned chips = 0;
    for (const auto &module : fleet)
        chips += module.spec.chips();
    std::printf("\nSimulated study fleet: %zu modules, %u chips "
                "(paper: 119 modules, 3006 chips)\n",
                fleet.size(), chips);
    return 0;
}
