#include "snapshot_cli.hh"

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <unistd.h>
#include <variant>

#include "snapshot/keeper.hh"
#include "snapshot/serializer.hh"
#include "telemetry/sinks.hh"
#include "util/logging.hh"

namespace hdmr::bench
{

namespace
{

/**
 * SIGINT/SIGTERM request flag.  The handler must stay strictly
 * async-signal-safe: it sets this one volatile sig_atomic_t and does
 * nothing else - no I/O, no allocation, and in particular no snapshot
 * work, which walks heap structures the interrupted code may have been
 * mutating.  The run loop polls the flag at its scheduler decision
 * points (the epoch boundaries of a sweep leg) via
 * RunOptions::interrupted and performs the final-snapshot path in
 * normal context.
 *
 * Escape hatch: a *second* SIGINT/SIGTERM means the graceful path is
 * stuck (most likely the final-snapshot write hanging on a dead disk)
 * and the user wants out *now*.  The handler _exit()s immediately with
 * the distinct code 131, skipping the snapshot - _exit() is
 * async-signal-safe and flushes nothing, which is exactly right when
 * the process state is suspect.
 */
volatile std::sig_atomic_t g_interrupted = 0;

/** Exit code of the second-signal immediate exit (130 = graceful). */
constexpr int kForcedExitCode = 131;

extern "C" void
handleStopSignal(int)
{
    if (g_interrupted != 0)
        _exit(kForcedExitCode);
    g_interrupted = 1;
}

double
parseSeconds(const char *flag, const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0')
        util::fatal("%s expects a number of simulated seconds "
                    "(got '%s')",
                    flag, text);
    return value;
}

void
printUsage(const char *bench)
{
    std::printf(
        "usage: %s [options]\n"
        "  --snapshot-every=<sim seconds>  periodic crash-safe "
        "snapshots (0 = off)\n"
        "  --snapshot-path=<file>          snapshot file "
        "(default %s.snap)\n"
        "  --snapshot-keep=<n>             last-good generations to "
        "keep (default 3)\n"
        "  --resume-from=<file>            resume an interrupted "
        "sweep (falls back to\n"
        "                                  older generations if the "
        "newest is corrupt)\n"
        "  --digest-every=<sim seconds>    state-digest cadence "
        "(default 86400)\n"
        "  --telemetry-out=<dir>           export metrics CSV/JSON, a "
        "Perfetto trace,\n"
        "                                  and a BENCH_<name>.json "
        "perf record\n"
        "  --help                          this text\n"
        "\nSIGINT/SIGTERM save a final snapshot before exiting "
        "(code 130);\na second signal skips the snapshot and exits "
        "immediately (code 131).\n",
        bench, bench);
}

} // namespace

SweepRunner::SweepRunner(std::string bench_name, int argc, char **argv)
    : bench_(std::move(bench_name)), snapshotPath_(bench_ + ".snap")
{
    parseArgs(argc, argv);
    if (!resumeFrom_.empty())
        loadResumeFile();
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
}

void
SweepRunner::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--snapshot-every=", 17) == 0) {
            snapshotEvery_ = parseSeconds("--snapshot-every", arg + 17);
            if (snapshotEvery_ < 0.0)
                util::fatal("--snapshot-every must be non-negative "
                            "(got %g)",
                            snapshotEvery_);
        } else if (std::strncmp(arg, "--snapshot-path=", 16) == 0) {
            snapshotPath_ = arg + 16;
            if (snapshotPath_.empty())
                util::fatal("--snapshot-path expects a file name");
        } else if (std::strncmp(arg, "--snapshot-keep=", 16) == 0) {
            char *end = nullptr;
            const unsigned long keep = std::strtoul(arg + 16, &end, 10);
            if (end == arg + 16 || *end != '\0' || keep < 1 ||
                keep > 64)
                util::fatal("--snapshot-keep expects an integer in "
                            "[1, 64] (got '%s')",
                            arg + 16);
            snapshotKeep_ = static_cast<unsigned>(keep);
        } else if (std::strncmp(arg, "--resume-from=", 14) == 0) {
            resumeFrom_ = arg + 14;
            if (resumeFrom_.empty())
                util::fatal("--resume-from expects a file name");
        } else if (std::strncmp(arg, "--digest-every=", 15) == 0) {
            digestEvery_ = parseSeconds("--digest-every", arg + 15);
            if (!(digestEvery_ > 0.0))
                util::fatal("--digest-every must be positive (got %g)",
                            digestEvery_);
        } else if (std::strncmp(arg, "--telemetry-out=", 16) == 0) {
            telemetryDir_ = arg + 16;
            if (telemetryDir_.empty())
                util::fatal("--telemetry-out expects a directory name");
        } else if (std::strcmp(arg, "--help") == 0) {
            printUsage(bench_.c_str());
            std::exit(0);
        } else {
            util::fatal("unknown argument '%s' (try --help)", arg);
        }
    }
}

void
SweepRunner::loadResumeFile()
{
    // Walk the last-good generations newest-first.  A generation that
    // fails the file envelope (magic/version/CRC) *or* the sweep-level
    // decode is logged with its structured code and skipped; the first
    // one that decodes end to end wins.  Only a well-formed image that
    // belongs to a different campaign aborts - its older siblings
    // would mismatch the same way.
    const snapshot::Keeper keeper(resumeFrom_, snapshotKeep_);
    util::Status last = util::notFound(
        "no snapshot generation exists under '%s'", resumeFrom_.c_str());
    for (unsigned g = 0; g < keeper.keep(); ++g) {
        const std::string path = keeper.generationPath(g);
        std::vector<std::uint8_t> payload;
        util::Status status = snapshot::readSnapshotFile(
            path, snapshot::kSweepStateKind, &payload);
        if (status.ok())
            status = decodeSweepPayload(payload);
        if (status.ok()) {
            resumeActive_ = !resumeActiveLabel_.empty();
            if (g > 0)
                std::fprintf(stderr,
                             "recovered: generation %u (%s) is the "
                             "newest valid snapshot\n",
                             g, path.c_str());
            std::printf("resuming sweep from %s: %zu completed "
                        "leg(s), active leg '%s'%s\n\n",
                        path.c_str(), completed_.size(),
                        resumeActive_ ? resumeActiveLabel_.c_str()
                                      : "(none)",
                        resumeActiveState_.empty()
                            ? " (not yet started)"
                            : "");
            return;
        }
        if (status.code() == util::StatusCode::kFailedPrecondition)
            util::fatal("cannot resume from '%s': %s", path.c_str(),
                        status.message().c_str());
        if (status.code() != util::StatusCode::kNotFound) {
            std::fprintf(stderr,
                         "warning: snapshot generation %u unusable "
                         "[%s]: %s; trying an older generation\n",
                         g, util::statusCodeName(status.code()),
                         status.message().c_str());
            last = status;
        } else if (g == 0) {
            last = status;
        }
    }
    util::fatal("cannot resume from '%s': %s (no older generation "
                "was valid either)",
                resumeFrom_.c_str(), last.message().c_str());
}

util::Status
SweepRunner::decodeSweepPayload(const std::vector<std::uint8_t> &payload)
{
    // A previous generation's failed decode may have half-filled the
    // resume state; start every attempt from scratch.
    completed_.clear();
    resumeActiveLabel_.clear();
    resumeActiveState_.clear();
    registry_ = telemetry::Registry{};

    snapshot::Deserializer in(payload);
    const std::string bench = in.readString();
    if (in.ok() && bench != bench_)
        return util::failedPrecondition(
            "snapshot belongs to benchmark '%s', not '%s'",
            bench.c_str(), bench_.c_str());
    // Each completed leg is at least a label length (4) plus the
    // metrics record; 8 is a safe floor for the count check.
    const std::uint64_t count = in.readCount("completed-leg list", 8);
    for (std::uint64_t i = 0; i < count && in.ok(); ++i) {
        CompletedLeg leg;
        leg.label = in.readString();
        restoreMetrics(in, &leg.metrics);
        completed_.push_back(std::move(leg));
    }
    resumeActiveLabel_ = in.readString();
    resumeActiveState_ = in.readBlob();
    HDMR_RETURN_IF_ERROR(in.status());

    // Telemetry section: presence must match this run's
    // --telemetry-out, because the registry feeds the active leg's
    // state digests.
    const bool saved_telemetry = in.readBool();
    HDMR_RETURN_IF_ERROR(in.status());
    if (saved_telemetry != telemetryEnabled())
        return util::failedPrecondition(
            "the sweep was %s --telemetry-out and this run is %s; "
            "rerun with a matching flag",
            saved_telemetry ? "saved with" : "saved without",
            telemetryEnabled() ? "using it" : "not");
    if (saved_telemetry && !registry_.restore(in))
        return in.ok() ? util::dataLoss(
                             "telemetry registry restore failed")
                       : in.status();
    HDMR_RETURN_IF_ERROR(in.status());
    if (in.remaining() != 0)
        return util::dataLoss("trailing garbage after the sweep image");
    return util::Status{};
}

void
SweepRunner::writeSweepFile() const
{
    snapshot::Serializer out;
    out.writeString(bench_);
    out.writeU64(completed_.size());
    for (const CompletedLeg &leg : completed_) {
        out.writeString(leg.label);
        saveMetrics(out, leg.metrics);
    }
    out.writeString(activeLabel_);
    out.writeBlob(activeState_);
    out.writeBool(telemetryEnabled());
    if (telemetryEnabled())
        registry_.save(out);

    const snapshot::Keeper keeper(snapshotPath_, snapshotKeep_);
    const util::Status status =
        keeper.save(snapshot::kSweepStateKind, out.data());
    if (!status.ok()) {
        // A failed periodic snapshot should not kill a long run; the
        // simulation itself is unaffected.
        std::fprintf(stderr, "warning: snapshot write failed [%s]: %s\n",
                     util::statusCodeName(status.code()),
                     status.message().c_str());
    }
}

sched::ClusterMetrics
SweepRunner::leg(const std::string &label,
                 const sched::ClusterConfig &config,
                 const std::vector<traces::Job> &jobs)
{
    if (stopped_)
        return {};

    const std::uint32_t tid = ++legIndex_;

    // Legs already completed in the resumed sweep replay from their
    // recorded metrics (and, with telemetry, from the restored
    // registry - reconciled like a live leg).
    if (nextCached_ < completed_.size()) {
        const CompletedLeg &cached = completed_[nextCached_];
        if (cached.label != label)
            util::fatal("sweep snapshot mismatch: recorded leg '%s', "
                        "benchmark asked for '%s'",
                        cached.label.c_str(), label.c_str());
        ++nextCached_;
        if (telemetryEnabled())
            reconcileLeg(label, cached.metrics);
        return cached.metrics;
    }

    // Interrupt landed between legs: save a sweep image marking this
    // leg as active-but-unstarted and stop.
    if (g_interrupted != 0) {
        activeLabel_ = label;
        if (resumeActive_ && label == resumeActiveLabel_)
            activeState_ = resumeActiveState_;
        else
            activeState_.clear();
        writeSweepFile();
        stopped_ = true;
        return {};
    }

    sched::ClusterSimulator sim(config);
    activeLabel_ = label;
    activeState_.clear();

    if (telemetryEnabled()) {
        sim.bindTelemetry(registry_, "cluster." + label);
        sim.bindTrace(&trace_, tid);
        trace_.setThreadName(tid, label);
        trace_.beginSpan(label, "leg", 0.0, tid);
    }

    sched::RunOptions options;
    options.digestEverySeconds = digestEvery_;
    options.snapshotEverySeconds = snapshotEvery_;
    options.snapshotSink =
        [this](const std::vector<std::uint8_t> &state) {
            activeState_ = state;
            writeSweepFile();
        };
    options.interrupted = [] { return g_interrupted != 0; };

    sched::RunOutcome outcome;
    if (resumeActive_) {
        if (label != resumeActiveLabel_)
            util::fatal("sweep snapshot mismatch: active leg '%s', "
                        "benchmark asked for '%s'",
                        resumeActiveLabel_.c_str(), label.c_str());
        resumeActive_ = false;
        if (resumeActiveState_.empty()) {
            // Interrupted before the leg started; run it fresh.
            outcome = sim.run(jobs, options);
        } else {
            const util::Status status =
                sim.restoreState(resumeActiveState_, jobs);
            if (!status.ok())
                util::fatal("cannot resume leg '%s' from '%s': %s",
                            label.c_str(), resumeFrom_.c_str(),
                            status.message().c_str());
            outcome = sim.resume(options);
        }
    } else {
        outcome = sim.run(jobs, options);
    }

    if (telemetryEnabled())
        trace_.endSpan(outcome.simSeconds * 1e6, tid, label);
    simSecondsTotal_ += outcome.simSeconds;
    simEventsTotal_ += outcome.eventsProcessed;

    if (!outcome.completed) {
        // The final snapshot already went through the sink.
        stopped_ = true;
        return outcome.metrics;
    }
    if (telemetryEnabled())
        reconcileLeg(label, outcome.metrics);
    completed_.push_back(CompletedLeg{label, outcome.metrics});
    nextCached_ = completed_.size();
    activeState_.clear();
    return outcome.metrics;
}

void
SweepRunner::reconcileLeg(const std::string &label,
                          const sched::ClusterMetrics &metrics) const
{
    const std::string prefix = "cluster." + label;
    const auto counter_value =
        [&](const char *name) -> std::uint64_t {
        const telemetry::Metric *metric =
            registry_.find(prefix + "." + name);
        const auto *counter =
            metric != nullptr ? std::get_if<telemetry::Counter>(metric)
                              : nullptr;
        if (counter == nullptr)
            util::fatal("telemetry reconciliation: counter '%s.%s' "
                        "missing from the registry",
                        prefix.c_str(), name);
        return counter->value();
    };
    const auto check = [&](const char *name, std::uint64_t expected) {
        const std::uint64_t got = counter_value(name);
        if (got != expected)
            util::fatal("telemetry reconciliation: %s.%s is %llu but "
                        "the leg's metrics say %llu",
                        prefix.c_str(), name,
                        static_cast<unsigned long long>(got),
                        static_cast<unsigned long long>(expected));
    };
    check("jobs_completed", metrics.jobsCompleted);
    check("ue_injected", metrics.ueInjected);
    check("job_kills", metrics.jobKills);
    check("requeues", metrics.requeues);
    check("jobs_dropped", metrics.jobsDropped);
    check("nodes_failed", metrics.nodesFailed);
    check("nodes_demoted", metrics.nodesDemoted);
    check("tolerant_ues", metrics.tolerantUes);
    check("critical_ues", metrics.criticalUes);
    check("jobs_degraded", metrics.jobsDegraded);
    check("pages_degraded", metrics.pagesDegraded);

    const telemetry::Metric *metric =
        registry_.find(prefix + ".turnaround_seconds");
    const auto *histogram =
        metric != nullptr
            ? std::get_if<telemetry::Log2Histogram>(metric)
            : nullptr;
    if (histogram == nullptr)
        util::fatal("telemetry reconciliation: histogram "
                    "'%s.turnaround_seconds' missing from the registry",
                    prefix.c_str());
    if (histogram->count() != metrics.jobsCompleted)
        util::fatal("telemetry reconciliation: "
                    "%s.turnaround_seconds recorded %llu samples for "
                    "%llu completed jobs",
                    prefix.c_str(),
                    static_cast<unsigned long long>(histogram->count()),
                    static_cast<unsigned long long>(
                        metrics.jobsCompleted));
    // Samples are recorded as whole seconds, so the histogram mean
    // can sit at most one second below the exact mean.
    if (metrics.jobsCompleted > 0 &&
        std::fabs(histogram->mean() - metrics.meanTurnaroundSeconds) >
            1.0)
        util::fatal("telemetry reconciliation: "
                    "%s.turnaround_seconds mean %.3f disagrees with "
                    "the leg's mean turnaround %.3f",
                    prefix.c_str(), histogram->mean(),
                    metrics.meanTurnaroundSeconds);
}

void
SweepRunner::exportTelemetry()
{
    std::error_code ec;
    std::filesystem::create_directories(telemetryDir_, ec);
    if (ec) {
        std::fprintf(stderr,
                     "warning: cannot create telemetry directory "
                     "'%s': %s\n",
                     telemetryDir_.c_str(), ec.message().c_str());
        return;
    }

    std::string error;
    const std::string csv_path = telemetryDir_ + "/metrics.csv";
    if (!telemetry::writeMetricsCsv(registry_, csv_path, &error))
        std::fprintf(stderr, "warning: %s\n", error.c_str());
    const std::string json_path = telemetryDir_ + "/metrics.json";
    if (!telemetry::writeMetricsJson(registry_, json_path, &error))
        std::fprintf(stderr, "warning: %s\n", error.c_str());
    const std::string trace_path = telemetryDir_ + "/trace.json";
    if (!trace_.writeChromeTrace(trace_path, &error))
        std::fprintf(stderr, "warning: %s\n", error.c_str());

    telemetry::BenchRecord record;
    record.bench = bench_;
    record.gitSha = telemetry::currentGitSha();
    record.wallSeconds = timer_.seconds();
    record.simSeconds = simSecondsTotal_;
    record.simEvents = simEventsTotal_;
    record.peakRssBytes = telemetry::currentPeakRssBytes();
    record.threads = 1;
    std::string record_path;
    if (!telemetry::writeBenchRecord(telemetryDir_, record, &error,
                                     &record_path))
        std::fprintf(stderr, "warning: %s\n", error.c_str());

    std::printf("\ntelemetry: %s, %s\n           %s (load in "
                "ui.perfetto.dev), %s\n",
                csv_path.c_str(), json_path.c_str(),
                trace_path.c_str(), record_path.c_str());
}

int
SweepRunner::finish()
{
    if (telemetryEnabled())
        exportTelemetry();
    if (!stopped_)
        return 0;
    std::fprintf(stderr,
                 "\n%s: interrupted during leg '%s'; sweep state "
                 "saved to %s\nresume with: --resume-from=%s\n",
                 bench_.c_str(), activeLabel_.c_str(),
                 snapshotPath_.c_str(), snapshotPath_.c_str());
    return 130;
}

} // namespace hdmr::bench
