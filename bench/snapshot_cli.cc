#include "snapshot_cli.hh"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "snapshot/serializer.hh"
#include "util/logging.hh"

namespace hdmr::bench
{

namespace
{

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void
handleStopSignal(int)
{
    g_interrupted = 1;
}

double
parseSeconds(const char *flag, const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0')
        util::fatal("%s expects a number of simulated seconds "
                    "(got '%s')",
                    flag, text);
    return value;
}

void
printUsage(const char *bench)
{
    std::printf(
        "usage: %s [options]\n"
        "  --snapshot-every=<sim seconds>  periodic crash-safe "
        "snapshots (0 = off)\n"
        "  --snapshot-path=<file>          snapshot file "
        "(default %s.snap)\n"
        "  --resume-from=<file>            resume an interrupted "
        "sweep\n"
        "  --digest-every=<sim seconds>    state-digest cadence "
        "(default 86400)\n"
        "  --help                          this text\n"
        "\nSIGINT/SIGTERM save a final snapshot before exiting "
        "(code 130).\n",
        bench, bench);
}

} // namespace

SweepRunner::SweepRunner(std::string bench_name, int argc, char **argv)
    : bench_(std::move(bench_name)), snapshotPath_(bench_ + ".snap")
{
    parseArgs(argc, argv);
    if (!resumeFrom_.empty())
        loadResumeFile();
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
}

void
SweepRunner::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--snapshot-every=", 17) == 0) {
            snapshotEvery_ = parseSeconds("--snapshot-every", arg + 17);
            if (snapshotEvery_ < 0.0)
                util::fatal("--snapshot-every must be non-negative "
                            "(got %g)",
                            snapshotEvery_);
        } else if (std::strncmp(arg, "--snapshot-path=", 16) == 0) {
            snapshotPath_ = arg + 16;
            if (snapshotPath_.empty())
                util::fatal("--snapshot-path expects a file name");
        } else if (std::strncmp(arg, "--resume-from=", 14) == 0) {
            resumeFrom_ = arg + 14;
            if (resumeFrom_.empty())
                util::fatal("--resume-from expects a file name");
        } else if (std::strncmp(arg, "--digest-every=", 15) == 0) {
            digestEvery_ = parseSeconds("--digest-every", arg + 15);
            if (!(digestEvery_ > 0.0))
                util::fatal("--digest-every must be positive (got %g)",
                            digestEvery_);
        } else if (std::strcmp(arg, "--help") == 0) {
            printUsage(bench_.c_str());
            std::exit(0);
        } else {
            util::fatal("unknown argument '%s' (try --help)", arg);
        }
    }
}

void
SweepRunner::loadResumeFile()
{
    std::vector<std::uint8_t> payload;
    std::string error;
    if (!snapshot::readSnapshotFile(
            resumeFrom_, snapshot::kSweepStateKind, &payload, &error))
        util::fatal("cannot resume from '%s': %s", resumeFrom_.c_str(),
                    error.c_str());

    snapshot::Deserializer in(payload);
    const std::string bench = in.readString();
    if (in.ok() && bench != bench_)
        util::fatal("cannot resume from '%s': snapshot belongs to "
                    "benchmark '%s', not '%s'",
                    resumeFrom_.c_str(), bench.c_str(),
                    bench_.c_str());
    const std::uint64_t count = in.readU64();
    if (count * 8 > in.remaining())
        util::fatal("cannot resume from '%s': completed-leg list "
                    "longer than the payload",
                    resumeFrom_.c_str());
    for (std::uint64_t i = 0; i < count && in.ok(); ++i) {
        CompletedLeg leg;
        leg.label = in.readString();
        restoreMetrics(in, &leg.metrics);
        completed_.push_back(std::move(leg));
    }
    resumeActiveLabel_ = in.readString();
    resumeActiveState_ = in.readBlob();
    if (!in.ok() || in.remaining() != 0)
        util::fatal("cannot resume from '%s': %s", resumeFrom_.c_str(),
                    in.ok() ? "trailing garbage after the sweep image"
                            : in.error().c_str());
    resumeActive_ = !resumeActiveLabel_.empty();

    std::printf("resuming sweep from %s: %zu completed leg(s), "
                "active leg '%s'%s\n\n",
                resumeFrom_.c_str(), completed_.size(),
                resumeActive_ ? resumeActiveLabel_.c_str() : "(none)",
                resumeActiveState_.empty() ? " (not yet started)" : "");
}

void
SweepRunner::writeSweepFile() const
{
    snapshot::Serializer out;
    out.writeString(bench_);
    out.writeU64(completed_.size());
    for (const CompletedLeg &leg : completed_) {
        out.writeString(leg.label);
        saveMetrics(out, leg.metrics);
    }
    out.writeString(activeLabel_);
    out.writeBlob(activeState_);

    std::string error;
    if (!snapshot::writeSnapshotFile(snapshotPath_,
                                     snapshot::kSweepStateKind,
                                     out.data(), &error)) {
        // A failed periodic snapshot should not kill a long run; the
        // simulation itself is unaffected.
        std::fprintf(stderr, "warning: snapshot write failed: %s\n",
                     error.c_str());
    }
}

sched::ClusterMetrics
SweepRunner::leg(const std::string &label,
                 const sched::ClusterConfig &config,
                 const std::vector<traces::Job> &jobs)
{
    if (stopped_)
        return {};

    // Legs already completed in the resumed sweep replay from their
    // recorded metrics.
    if (nextCached_ < completed_.size()) {
        const CompletedLeg &cached = completed_[nextCached_];
        if (cached.label != label)
            util::fatal("sweep snapshot mismatch: recorded leg '%s', "
                        "benchmark asked for '%s'",
                        cached.label.c_str(), label.c_str());
        ++nextCached_;
        return cached.metrics;
    }

    // Interrupt landed between legs: save a sweep image marking this
    // leg as active-but-unstarted and stop.
    if (g_interrupted != 0) {
        activeLabel_ = label;
        if (resumeActive_ && label == resumeActiveLabel_)
            activeState_ = resumeActiveState_;
        else
            activeState_.clear();
        writeSweepFile();
        stopped_ = true;
        return {};
    }

    sched::ClusterSimulator sim(config);
    activeLabel_ = label;
    activeState_.clear();

    sched::RunOptions options;
    options.digestEverySeconds = digestEvery_;
    options.snapshotEverySeconds = snapshotEvery_;
    options.snapshotSink =
        [this](const std::vector<std::uint8_t> &state) {
            activeState_ = state;
            writeSweepFile();
        };
    options.interrupted = [] { return g_interrupted != 0; };

    sched::RunOutcome outcome;
    if (resumeActive_) {
        if (label != resumeActiveLabel_)
            util::fatal("sweep snapshot mismatch: active leg '%s', "
                        "benchmark asked for '%s'",
                        resumeActiveLabel_.c_str(), label.c_str());
        resumeActive_ = false;
        if (resumeActiveState_.empty()) {
            // Interrupted before the leg started; run it fresh.
            outcome = sim.run(jobs, options);
        } else {
            std::string error;
            if (!sim.restoreState(resumeActiveState_, jobs, &error))
                util::fatal("cannot resume leg '%s' from '%s': %s",
                            label.c_str(), resumeFrom_.c_str(),
                            error.c_str());
            outcome = sim.resume(options);
        }
    } else {
        outcome = sim.run(jobs, options);
    }

    if (!outcome.completed) {
        // The final snapshot already went through the sink.
        stopped_ = true;
        return outcome.metrics;
    }
    completed_.push_back(CompletedLeg{label, outcome.metrics});
    nextCached_ = completed_.size();
    activeState_.clear();
    return outcome.metrics;
}

int
SweepRunner::finish() const
{
    if (!stopped_)
        return 0;
    std::fprintf(stderr,
                 "\n%s: interrupted during leg '%s'; sweep state "
                 "saved to %s\nresume with: --resume-from=%s\n",
                 bench_.c_str(), activeLabel_.c_str(),
                 snapshotPath_.c_str(), snapshotPath_.c_str());
    return 130;
}

} // namespace hdmr::bench
