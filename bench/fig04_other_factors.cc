/**
 * @file
 * Fig. 4: impact of aging/condition, ranks per module, chip density
 * and manufacturing date on measured frequency margin (all small),
 * plus the spec-rate effect and its 4000 MT/s platform-cap artifact.
 */

#include <cstdio>

#include "margin/population.hh"
#include "margin/study.hh"
#include "margin/test_machine.hh"
#include "util/table.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::margin;

void
printGroups(const char *title, const std::vector<GroupStats> &groups)
{
    std::printf("%s\n", title);
    util::Table table({"group", "modules", "mean margin (MT/s)",
                       "stdev (MT/s)"});
    for (const auto &g : groups) {
        table.row()
            .cell(g.label)
            .cell(static_cast<long long>(g.count))
            .cell(g.meanMarginMts, 0)
            .cell(g.stdevMts, 0);
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    const auto fleet = makeStudyFleet(2021);
    TestMachine machine(TestMachineConfig{}, 7);
    const auto measurements = machine.characterizeFleet(fleet);

    // Only brands A-C, as in the paper.
    std::vector<MemoryModule> abc_fleet;
    std::vector<MarginMeasurement> abc_meas;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        if (fleet[i].spec.brand != Brand::kD) {
            abc_fleet.push_back(fleet[i]);
            abc_meas.push_back(measurements[i]);
        }
    }

    std::printf("FIG. 4: Impact of other memory module factors "
                "(brands A-C)\n\n");
    printGroups("(a) condition / aging:",
                groupMargins(abc_fleet, abc_meas,
                             [](const MemoryModule &m) {
                                 return toString(m.spec.condition);
                             }));
    printGroups("(b) ranks per module:",
                groupMargins(abc_fleet, abc_meas,
                             [](const MemoryModule &m) {
                                 return std::to_string(
                                            m.spec.ranksPerModule) +
                                        " rank(s)";
                             }));
    printGroups("(c) chip density:",
                groupMargins(abc_fleet, abc_meas,
                             [](const MemoryModule &m) {
                                 return std::to_string(
                                            m.spec.chipDensityGbit) +
                                        " Gbit";
                             }));
    printGroups("(d) manufacturing year:",
                groupMargins(abc_fleet, abc_meas,
                             [](const MemoryModule &m) {
                                 return std::to_string(m.spec.mfgYear);
                             }));
    printGroups("(e) manufacturer-specified data rate:",
                groupMargins(abc_fleet, abc_meas,
                             [](const MemoryModule &m) {
                                 return std::to_string(
                                            m.spec.specRateMts) +
                                        " MT/s";
                             }));

    // The platform-cap artifact: count 3200/9-chip modules at 4000.
    unsigned at_cap = 0, nine_chip_3200 = 0;
    for (std::size_t i = 0; i < abc_fleet.size(); ++i) {
        const auto &m = abc_fleet[i];
        if (m.spec.specRateMts == 3200 && m.spec.chipsPerRank == 9) {
            ++nine_chip_3200;
            at_cap += abc_meas[i].measuredMaxRateMts == 4000;
        }
    }
    std::printf("3200 MT/s 9-chip modules reaching the 4000 MT/s "
                "platform cap: %u of %u (paper: 36 of 44)\n",
                at_cap, nine_chip_3200);
    return 0;
}
