/**
 * @file
 * Fig. 16: silicon-corroboration methodology (Section IV-B).
 *
 * The paper emulates Hetero-DMR on a real machine as
 *
 *   exec@unsafely_fast - wr_time@unsafely_fast + wr_time@safely_slow,
 *
 * with wr_time = written_bytes / bandwidth, and compares against the
 * simulated Hetero-DMR.  We apply the same formula to our simulated
 * "real system" (the Exploit Freq+Lat run plays the overclocked
 * machine) and compare against the directly-simulated Hetero-DMR.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "eval_common.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main(int argc, char **argv)
{
    using namespace hdmr;
    using namespace hdmr::bench;

    EvalHarness harness("fig16_silicon_corroboration", argc, argv);
    const EvalSizing sizing;
    const auto margins_grid = EvalGrid::runOrLoad(
        "results/fig05_results.csv", marginSettingsGrid(sizing),
        harness.threads());
    const auto eval_grid = EvalGrid::runOrLoad(
        "results/eval_results.csv", evaluationGrid(sizing),
        harness.threads());

    std::printf("FIG. 16: Silicon corroboration under Memory "
                "Hierarchy 1\n(speedups normalized to Commercial "
                "Baseline)\n\n");

    util::Table table({"benchmark", "exploit freq+lat",
                       "Hetero-DMR emulated", "Hetero-DMR simulated"});
    std::map<std::string, std::vector<double>> emu, sim;
    for (const auto &w : wl::benchmarkCatalog()) {
        const auto &base = margins_grid.lookup(
            w.name, "Hierarchy1", "Commercial Baseline", 800, 1);
        const auto &fast = margins_grid.lookup(
            w.name, "Hierarchy1", "Exploit Freq+Lat Margins", 800, 1);
        const auto &hdmr = eval_grid.lookup(w.name, "Hierarchy1",
                                            "Hetero-DMR", 800, 1);

        // Emulation formula: move write time from the fast rate to
        // the spec rate.  wr_time = written bytes / bandwidth.
        const double written_gb =
            fast.writeBandwidthGBs * fast.execSeconds;
        const double bw_fast =
            util::channelPeakBandwidth(4000) / 1.0e9;
        const double bw_slow =
            util::channelPeakBandwidth(3200) / 1.0e9;
        const double emulated_exec = fast.execSeconds -
                                     written_gb / bw_fast +
                                     written_gb / bw_slow;

        const double s_fast = base.execSeconds / fast.execSeconds;
        const double s_emu = base.execSeconds / emulated_exec;
        const double s_sim = base.execSeconds / hdmr.execSeconds;
        emu[w.suite].push_back(s_emu);
        sim[w.suite].push_back(s_sim);
        table.row()
            .cell(w.name)
            .cell(util::formatSpeedup(s_fast))
            .cell(util::formatSpeedup(s_emu))
            .cell(util::formatSpeedup(s_sim));
    }
    table.print();

    const double mean_emu = suiteAverage(emu);
    const double mean_sim = suiteAverage(sim);
    std::printf("\nSuite-average: emulated %s vs simulated %s "
                "(gap %.1f%%; paper reports ~2%% between its gem5 "
                "setup and silicon, and 2-3%% below Exploit "
                "Freq+Lat)\n",
                util::formatSpeedup(mean_emu).c_str(),
                util::formatSpeedup(mean_sim).c_str(),
                (mean_emu / mean_sim - 1.0) * 100.0);
    return harness.finish({&margins_grid, &eval_grid});
}
