/**
 * @file
 * Crash-safe snapshot/resume plumbing for the system-wide benchmark
 * drivers (fig17, fig18).
 *
 * The benchmarks run a *sweep* of simulation legs (conventional,
 * Hetero-DMR, fault intensities, ...).  SweepRunner executes each leg
 * through the snapshot-aware ClusterSimulator API and maintains one
 * sweep-level snapshot file holding the metrics of every completed leg
 * plus the serialized mid-run state of the active leg, so an
 * interrupted sweep resumes exactly where it stopped: finished legs
 * replay from their recorded metrics, the active leg restores its
 * simulator state and continues bit-identically.
 *
 * Snapshots are kept as rotating last-good generations
 * (snapshot::Keeper): `<path>` is the newest image, `<path>.1` the
 * previous one, and so on up to --snapshot-keep generations.  On
 * --resume-from, generations are tried newest-first: a corrupt,
 * truncated, or otherwise undecodable image is *logged* (with its
 * structured status code) and the next older generation is tried, so a
 * damaged newest snapshot costs one checkpoint interval, not the run.
 * Only a well-formed image that belongs to a different campaign (wrong
 * benchmark, mismatched --telemetry-out) is still fatal - older
 * generations of the same file would mismatch identically.
 *
 * Flags (parsed from argv; anything unrecognised is fatal):
 *   --snapshot-every=<sim seconds>  periodic snapshots (0 = off)
 *   --snapshot-path=<file>          snapshot file (default <bench>.snap)
 *   --snapshot-keep=<n>             last-good generations to keep
 *                                   (default 3)
 *   --resume-from=<file>            resume a previous sweep
 *   --digest-every=<sim seconds>    digest-trail cadence (default 86400)
 *   --telemetry-out=<dir>           export metrics (CSV + JSON), a
 *                                   Chrome/Perfetto trace, and a
 *                                   BENCH_<bench>.json perf record
 *
 * With --telemetry-out, every leg binds the shared metric registry
 * under "cluster.<label>" and a per-leg trace track; the registry is
 * persisted in the sweep image (and in the active leg's simulator
 * state), so metric values survive --resume-from bit-identically.
 * After each completed leg the registry is reconciled against the
 * leg's ClusterMetrics - any mismatch is fatal.
 *
 * SIGINT/SIGTERM set a flag the event loop polls at its next decision
 * point; the run writes a final snapshot and the process exits 130
 * with a message naming the file to resume from.
 */

#ifndef HDMR_BENCH_SNAPSHOT_CLI_HH
#define HDMR_BENCH_SNAPSHOT_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sched/cluster_sim.hh"
#include "snapshot/keeper.hh"
#include "telemetry/bench_record.hh"
#include "util/status.hh"
#include "telemetry/telemetry.hh"
#include "traces/job_trace.hh"

namespace hdmr::bench
{

/** Runs a benchmark's simulation legs with snapshot/resume support. */
class SweepRunner
{
  public:
    /**
     * Parses the snapshot flags (fatal on unknown arguments or
     * malformed values) and installs SIGINT/SIGTERM handlers.
     * `bench_name` tags the snapshot file so a fig18 image cannot be
     * resumed into fig17.
     */
    SweepRunner(std::string bench_name, int argc, char **argv);

    /**
     * Execute one sweep leg.  Legs are identified by `label` and must
     * be issued in a fixed order across runs; on resume, completed
     * legs return their recorded metrics instantly and the active leg
     * restores and continues.  Once the sweep is interrupted, further
     * legs are skipped (zeroed metrics) - check stoppedEarly().
     */
    sched::ClusterMetrics leg(const std::string &label,
                              const sched::ClusterConfig &config,
                              const std::vector<traces::Job> &jobs);

    /** True once a leg was interrupted (results are incomplete). */
    bool stoppedEarly() const { return stopped_; }

    /** True when --telemetry-out was given. */
    bool telemetryEnabled() const { return !telemetryDir_.empty(); }

    /** The shared metric registry (empty unless telemetry is on). */
    telemetry::Registry &registry() { return registry_; }

    /**
     * Final bookkeeping: exports the telemetry artifacts (when
     * enabled); on an interrupted sweep, prints where the snapshot
     * went and how to resume, and returns exit code 130; otherwise
     * returns 0.
     */
    int finish();

  private:
    struct CompletedLeg
    {
        std::string label;
        sched::ClusterMetrics metrics;
    };

    void parseArgs(int argc, char **argv);
    void loadResumeFile();
    /**
     * Decode one verified sweep payload into the resume members.
     * Clears any state a previous (failed) attempt left behind first.
     * kDataLoss/kResourceExhausted mean "try an older generation";
     * kFailedPrecondition means the image belongs to a different
     * campaign and no generation can help.
     */
    util::Status decodeSweepPayload(
        const std::vector<std::uint8_t> &payload);
    void writeSweepFile() const;
    void reconcileLeg(const std::string &label,
                      const sched::ClusterMetrics &metrics) const;
    void exportTelemetry();

    std::string bench_;
    double snapshotEvery_ = 0.0;
    double digestEvery_ = 86400.0;
    unsigned snapshotKeep_ = snapshot::Keeper::kDefaultKeep;
    std::string snapshotPath_;
    std::string resumeFrom_;
    std::string telemetryDir_;

    telemetry::Registry registry_;
    telemetry::TraceRecorder trace_;
    telemetry::WallTimer timer_;
    std::uint32_t legIndex_ = 0;
    double simSecondsTotal_ = 0.0;
    std::uint64_t simEventsTotal_ = 0;

    std::vector<CompletedLeg> completed_;
    std::size_t nextCached_ = 0;

    bool resumeActive_ = false;
    std::string resumeActiveLabel_;
    std::vector<std::uint8_t> resumeActiveState_;

    std::string activeLabel_;
    std::vector<std::uint8_t> activeState_;

    bool stopped_ = false;
};

} // namespace hdmr::bench

#endif // HDMR_BENCH_SNAPSHOT_CLI_HH
