#include "eval_cache.hh"

#include <istream>
#include <sstream>

namespace hdmr::bench
{

std::string
serializeEvalRow(const EvalRow &row)
{
    std::ostringstream out;
    out.precision(17); // round-trip exactly
    out << row.benchmark << ',' << row.suite << ',' << row.hierarchy
        << ',' << row.system << ',' << row.marginMts << ','
        << row.usageClass << ',' << row.execSeconds << ',' << row.epiNj
        << ',' << row.dramAccessesPerInstruction << ','
        << row.busUtilization << ',' << row.readBandwidthGBs << ','
        << row.writeBandwidthGBs << ',' << row.commFraction << ','
        << row.corrections;
    return out.str();
}

util::Status
parseEvalRow(const traces::CsvCursor &at, const std::string &line,
             EvalRow *row)
{
    *row = EvalRow{};
    EvalRow out;
    std::vector<std::string> fields;
    HDMR_RETURN_IF_ERROR(
        traces::splitCsvLine(at, line, kEvalCacheFields, &fields));
    constexpr double kHuge = 1.0e18;
    static const char *const kNames[4] = {"benchmark", "suite",
                                          "hierarchy", "system"};
    for (unsigned i = 0; i < 4; ++i) {
        if (fields[i].empty()) {
            return util::dataLoss("%s:%zu: field %u: empty name",
                                  at.file.c_str(), at.line, i + 1);
        }
        if (fields[i].size() > kMaxEvalNameBytes) {
            return util::resourceExhausted(
                "%s:%zu: field '%s': %zu-byte name exceeds the "
                "%zu-byte cap",
                at.file.c_str(), at.line, kNames[i], fields[i].size(),
                kMaxEvalNameBytes);
        }
    }
    out.benchmark = fields[0];
    out.suite = fields[1];
    out.hierarchy = fields[2];
    out.system = fields[3];
    std::uint64_t margin = 0, usage_class = 0;
    HDMR_RETURN_IF_ERROR(traces::parseCsvUnsigned(
        at, "marginMts", fields[4], 0, 100000, &margin));
    HDMR_RETURN_IF_ERROR(traces::parseCsvUnsigned(
        at, "usageClass", fields[5], 0, 2, &usage_class));
    out.marginMts = static_cast<unsigned>(margin);
    out.usageClass = static_cast<unsigned>(usage_class);
    HDMR_RETURN_IF_ERROR(traces::parseCsvDouble(
        at, "execSeconds", fields[6], 0.0, kHuge, &out.execSeconds));
    HDMR_RETURN_IF_ERROR(traces::parseCsvDouble(
        at, "epiNj", fields[7], 0.0, kHuge, &out.epiNj));
    HDMR_RETURN_IF_ERROR(traces::parseCsvDouble(
        at, "dramAccessesPerInstruction", fields[8], 0.0, kHuge,
        &out.dramAccessesPerInstruction));
    HDMR_RETURN_IF_ERROR(
        traces::parseCsvDouble(at, "busUtilization", fields[9], 0.0,
                               1.0, &out.busUtilization));
    HDMR_RETURN_IF_ERROR(traces::parseCsvDouble(
        at, "readBandwidthGBs", fields[10], 0.0, kHuge,
        &out.readBandwidthGBs));
    HDMR_RETURN_IF_ERROR(traces::parseCsvDouble(
        at, "writeBandwidthGBs", fields[11], 0.0, kHuge,
        &out.writeBandwidthGBs));
    HDMR_RETURN_IF_ERROR(
        traces::parseCsvDouble(at, "commFraction", fields[12], 0.0,
                               1.0, &out.commFraction));
    HDMR_RETURN_IF_ERROR(traces::parseCsvDouble(
        at, "corrections", fields[13], 0.0, kHuge,
        &out.corrections));
    *row = std::move(out);
    return util::Status{};
}

util::Status
loadEvalCache(std::istream &in, const std::string &name,
              std::vector<EvalRow> *rows)
{
    rows->clear();
    traces::CsvCursor at{name, 0};
    util::Status status;
    std::string line;
    while (traces::readCsvLine(in, &at, &line, &status)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (rows->size() >= kMaxEvalCacheRows) {
            rows->clear();
            return util::resourceExhausted(
                "%s:%zu: more than %zu cache rows (corrupt or "
                "runaway file)",
                name.c_str(), at.line, kMaxEvalCacheRows);
        }
        EvalRow row;
        status = parseEvalRow(at, line, &row);
        if (!status.ok()) {
            rows->clear();
            return status;
        }
        rows->push_back(std::move(row));
    }
    if (!status.ok()) {
        rows->clear();
        return status;
    }
    return util::Status{};
}

} // namespace hdmr::bench
