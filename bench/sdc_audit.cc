/**
 * @file
 * SDC containment audit driver (robustness extension).
 *
 * Runs verify::SdcAudit - the shadow-memory oracle campaign - over a
 * sampled module fleet and reports how detection-only Bamboo ECC holds
 * up end to end: every modeled unsafe-fast access is classified as
 * clean, detected-and-recovered, detected-uncorrectable, or a silent
 * escape, with the 2^-64 wide-error escape tail importance-sampled so
 * it is actually observed.  The report compares the measured
 * per-wide-error escape probability against the codec's analytic
 * bound and projects the fleet's MTT-SDC against the epoch guard's
 * one-billion-year target (Section III-B).
 *
 * Flags (unknown flags and malformed values are fatal):
 *   --smoke                  short deterministic campaign plus the
 *                            self-checks ctest runs (sdc_audit_smoke):
 *                            zero unclassified accesses, escape rate
 *                            consistent with the codec bound, and
 *                            bit-identical completion after a mid-run
 *                            snapshot/resume
 *   --seed=<n>               campaign seed (default 0x5dc0417)
 *   --modules=<n>            fleet size (default 8)
 *   --hours=<n>              modeled hours per module (default 72)
 *   --accesses-per-hour=<x>  modeled accesses per module-hour
 *                            (default 2e9)
 *   --overshoot=<steps>      rate steps past each module's stable
 *                            rate (default 2)
 *   --wide-oversample=<x>    minimum proposal share of wide errors
 *                            (default 0.25)
 *   --snapshot=<file>        write a resumable snapshot on completion
 *                            (and on SIGINT/SIGTERM; default
 *                            sdc_audit.snap when interrupted)
 *   --resume-from=<file>     resume an interrupted audit; if the
 *                            newest snapshot generation is corrupt,
 *                            older last-good generations (<file>.1,
 *                            <file>.2) are tried before giving up
 *   --telemetry-out=<dir>    export the audit's classification counts
 *                            as metrics (CSV + JSON) plus a
 *                            BENCH_sdc_audit.json perf record
 *
 * SIGINT/SIGTERM write a final snapshot and exit 130.  The handler is
 * strictly async-signal-safe: it sets one volatile sig_atomic_t flag
 * and nothing else; the snapshot itself is written from the main loop,
 * which polls the flag at each module-hour (epoch) boundary.  A second
 * SIGINT/SIGTERM skips the snapshot and exits 131 immediately.
 */

#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "ecc/bamboo.hh"
#include "snapshot/keeper.hh"
#include "snapshot/serializer.hh"
#include "telemetry/bench_record.hh"
#include "telemetry/sinks.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "verify/audit.hh"

namespace
{

using namespace hdmr;
using verify::AccessClass;
using verify::OracleCounters;
using verify::SdcAudit;
using verify::SdcAuditConfig;
using verify::SdcAuditReport;

/**
 * SIGINT/SIGTERM request flag.  The handler must stay strictly
 * async-signal-safe: set this flag, do nothing else (no I/O, no
 * allocation, no snapshot work).  The campaign loop polls it at each
 * module-hour boundary and runs the final-snapshot path in normal
 * context.
 *
 * A *second* SIGINT/SIGTERM is the escape hatch for a stuck graceful
 * path (e.g. the final-snapshot fsync hanging on a dead disk): the
 * handler _exit()s immediately with the distinct code 131, skipping
 * the snapshot (_exit() is async-signal-safe).
 */
volatile std::sig_atomic_t g_interrupted = 0;

/** Exit code of the second-signal immediate exit (130 = graceful). */
constexpr int kForcedExitCode = 131;

extern "C" void
handleStopSignal(int)
{
    if (g_interrupted != 0)
        _exit(kForcedExitCode);
    g_interrupted = 1;
}

/** Strict numeric flag parsing: the whole value must consume. */
double
parseDouble(const char *flag, const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || !std::isfinite(value))
        util::fatal("sdc_audit: flag %s: malformed number '%s'", flag,
                    text);
    return value;
}

std::uint64_t
parseU64(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0')
        util::fatal("sdc_audit: flag %s: malformed integer '%s'", flag,
                    text);
    return value;
}

/** Match --name=value; returns the value part or nullptr. */
const char *
flagValue(const char *arg, const char *name)
{
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=')
        return arg + len + 1;
    return nullptr;
}

void
printReport(const SdcAuditConfig &config, const SdcAuditReport &report)
{
    std::printf("\nclassification (fleet-wide):\n");
    std::printf("  %-24s %16s %22s\n", "class", "raw", "weighted");
    for (unsigned cls = 0; cls < verify::kAccessClassCount; ++cls) {
        std::printf("  %-24s %16" PRIu64 " %22.6g\n",
                    verify::accessClassName(
                        static_cast<AccessClass>(cls)),
                    report.total.raw[cls], report.total.weighted[cls]);
    }
    std::printf("  %-24s %16" PRIu64 "\n", "unclassified",
                report.total.unclassified);

    std::printf("\nimportance-sampled wide-error tail:\n");
    std::printf("  wide draws              %16" PRIu64
                "  (null-space constructed: %" PRIu64 ")\n",
                report.total.wideDraws, report.total.nullSpaceDraws);
    const double expected = ecc::BambooCodec::escapeProbability8BPlus();
    std::printf("  P(escape | wide error)  %16.4e  measured\n",
                report.escapesPerWideError());
    std::printf("  %-24s%16.4e  analytic 2^-64 bound\n", "",
                expected);

    std::printf("\nrecovery ladder (oracle):\n");
    std::printf("  retry attempts          %16" PRIu64 "\n",
                report.total.retryAttempts);
    std::printf("  retried recoveries      %16" PRIu64 "\n",
                report.total.retriedRecoveries);
    std::printf("  miscorrections          %16" PRIu64
                "  (escape weight %.3g)\n",
                report.total.miscorrections,
                report.total.miscorrectionWeight);

    std::printf("\nepoch-guard pressure:\n");
    std::printf("  detected errors         %16" PRIu64 "\n",
                report.detectedErrors);
    std::printf("  guard trips             %16" PRIu64 "\n",
                report.guardTrips);
    std::printf("  epochs observed         %16u\n",
                report.epochsObserved);

    const double fleet_accesses_per_hour =
        config.accessesPerHour * config.modules;
    const double mtt = report.projectedMttSdcYears(
        fleet_accesses_per_hour);
    std::printf("\nprojected MTT-SDC at %.3g accesses/hour: ",
                fleet_accesses_per_hour);
    if (std::isinf(mtt))
        std::printf("no escape weight observed (unbounded)\n");
    else
        std::printf("%.3g years\n", mtt);
    std::printf("epoch-guard design target: 1e9 years -> %s\n",
                std::isinf(mtt) || mtt >= 1.0e9 ? "MET" : "MISSED");
}

/**
 * Export the audit's fleet-wide counters under "verify.*" plus the
 * perf-trajectory record.  Fatal on I/O failure: an explicitly
 * requested export that silently vanished would poison the trajectory.
 */
void
exportTelemetry(const std::string &dir, const SdcAudit &audit,
                const telemetry::WallTimer &timer)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        util::fatal("sdc_audit: cannot create '%s': %s", dir.c_str(),
                    ec.message().c_str());

    telemetry::Registry registry;
    audit.publishTelemetry(registry, "verify");
    std::string error;
    const std::string csv = dir + "/metrics.csv";
    if (!telemetry::writeMetricsCsv(registry, csv, &error))
        util::fatal("sdc_audit: %s", error.c_str());
    const std::string json = dir + "/metrics.json";
    if (!telemetry::writeMetricsJson(registry, json, &error))
        util::fatal("sdc_audit: %s", error.c_str());

    const SdcAuditReport report = audit.report();
    telemetry::BenchRecord record;
    record.bench = "sdc_audit";
    record.gitSha = telemetry::currentGitSha();
    record.wallSeconds = timer.seconds();
    record.simSeconds = report.modeledHours * 3600.0;
    record.simEvents = report.total.rawTotal();
    record.peakRssBytes = telemetry::currentPeakRssBytes();
    record.threads = 1;
    std::string bench_path;
    if (!telemetry::writeBenchRecord(dir, record, &error, &bench_path))
        util::fatal("sdc_audit: %s", error.c_str());
    std::printf("telemetry: %s, %s, %s\n", csv.c_str(), json.c_str(),
                bench_path.c_str());
}

/** Serialize an audit's full mutable state to bytes. */
std::vector<std::uint8_t>
stateBytes(const SdcAudit &audit)
{
    snapshot::Serializer out;
    audit.saveState(out);
    return out.data();
}

/**
 * The checks ctest's sdc_audit_smoke gates on.  Returns the number of
 * failed checks (0 = pass) and prints a verdict per check.
 */
int
runSmokeChecks(const SdcAuditConfig &config,
               const std::string &telemetry_dir,
               const telemetry::WallTimer &timer)
{
    int failures = 0;
    const auto check = [&failures](bool ok, const char *what) {
        std::printf("smoke: %-44s %s\n", what, ok ? "PASS" : "FAIL");
        failures += ok ? 0 : 1;
    };

    // One uninterrupted reference run with the pristine oracle.
    SdcAudit reference(config);
    reference.run();
    const SdcAuditReport report = reference.report();

    const double modeled =
        config.accessesPerHour * reference.totalSteps();
    check(report.total.unclassified == 0, "zero unclassified accesses");
    check(report.total.rawTotal() ==
              static_cast<std::uint64_t>(modeled),
          "every modeled access accounted for");
    check(report.total.wideDraws > 0 && report.total.nullSpaceDraws > 0,
          "wide-error tail actually sampled");
    check(report.escapeConsistentWith(
              ecc::BambooCodec::escapeProbability8BPlus(), 2.0),
          "escape rate consistent with 2^-64 bound");
    const double mtt = report.projectedMttSdcYears(
        config.accessesPerHour * config.modules);
    check(std::isinf(mtt) || mtt >= 1.0e9,
          "projected MTT-SDC meets 1e9-year target");

    // A smaller campaign with a flaky original copy, so the recovery
    // ladder's retry rungs and the UE terminal state carry traffic.
    SdcAuditConfig flaky = config;
    flaky.modules = 1;
    flaky.hours = 2;
    flaky.accessesPerHour = 1.0e7;
    flaky.oracle.originalErrorProbability = 0.4;
    SdcAudit ladder(flaky);
    ladder.run();
    const SdcAuditReport ladder_report = ladder.report();
    check(ladder_report.total.unclassified == 0 &&
              ladder_report.total.retriedRecoveries > 0 &&
              ladder_report.total.raw[static_cast<unsigned>(
                  AccessClass::kDetectedUe)] > 0,
          "retry ladder and UE terminal state exercised");

    // Interrupt a second run at the midpoint, resume a third from the
    // snapshot, and require bit-identical completion.
    SdcAudit interrupted(config);
    for (std::uint64_t i = 0; i < interrupted.totalSteps() / 2; ++i)
        interrupted.step();
    const std::vector<std::uint8_t> mid = stateBytes(interrupted);

    SdcAudit resumed(config);
    snapshot::Deserializer in(mid);
    check(resumed.restoreState(in) && in.ok() && in.remaining() == 0,
          "mid-run snapshot restores");
    interrupted.run();
    resumed.run();
    check(stateBytes(resumed) == stateBytes(interrupted),
          "resumed run completes bit-identically");
    check(stateBytes(interrupted) == stateBytes(reference),
          "interrupted+resumed matches uninterrupted");

    printReport(config, report);
    if (!telemetry_dir.empty())
        exportTelemetry(telemetry_dir, reference, timer);
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    SdcAuditConfig config;
    config.modules = 8;
    config.hours = 72;
    config.accessesPerHour = 2.0e9;
    bool smoke = false;
    std::string snapshot_path;
    std::string resume_from;
    std::string telemetry_dir;
    const telemetry::WallTimer timer;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--smoke") == 0)
            smoke = true;
        else if ((value = flagValue(arg, "--seed")))
            config.seed = parseU64("--seed", value);
        else if ((value = flagValue(arg, "--modules")))
            config.modules =
                static_cast<unsigned>(parseU64("--modules", value));
        else if ((value = flagValue(arg, "--hours")))
            config.hours =
                static_cast<unsigned>(parseU64("--hours", value));
        else if ((value = flagValue(arg, "--accesses-per-hour")))
            config.accessesPerHour =
                parseDouble("--accesses-per-hour", value);
        else if ((value = flagValue(arg, "--overshoot")))
            config.overshootSteps =
                static_cast<unsigned>(parseU64("--overshoot", value));
        else if ((value = flagValue(arg, "--wide-oversample")))
            config.wideOversample =
                parseDouble("--wide-oversample", value);
        else if ((value = flagValue(arg, "--snapshot")))
            snapshot_path = value;
        else if ((value = flagValue(arg, "--resume-from")))
            resume_from = value;
        else if ((value = flagValue(arg, "--telemetry-out")))
            telemetry_dir = value;
        else
            util::fatal("sdc_audit: unknown flag '%s'", arg);
    }

    if (smoke) {
        // Small but wide-heavy: enough erroneous accesses to exercise
        // every classification path deterministically in well under a
        // second, with the wide tail oversampled so the escape
        // estimate has support.
        config.modules = 2;
        config.hours = 8;
        config.accessesPerHour = 1.0e8;
        config.wideOversample = 0.5;
        std::printf("SDC AUDIT (smoke): %u modules x %u h x %.3g "
                    "accesses/h\n",
                    config.modules, config.hours,
                    config.accessesPerHour);
        const int failures = runSmokeChecks(config, telemetry_dir, timer);
        if (failures > 0) {
            std::fprintf(stderr, "sdc_audit: %d smoke check(s) FAILED\n",
                         failures);
            return 1;
        }
        std::printf("\nsdc_audit: all smoke checks passed\n");
        return 0;
    }

    util::checkOk(config.validate());
    std::printf("SDC AUDIT: %u modules x %u h x %.3g accesses/h "
                "(overshoot %u steps, wide oversample %.2f)\n",
                config.modules, config.hours, config.accessesPerHour,
                config.overshootSteps, config.wideOversample);

    SdcAudit audit(config);
    if (!resume_from.empty()) {
        // Walk the last-good generations newest-first; a corrupt or
        // truncated generation is logged and skipped, a well-formed
        // snapshot from a different campaign is fatal (older
        // generations of the same campaign would mismatch the same
        // way).
        const snapshot::Keeper keeper(resume_from);
        bool resumed = false;
        util::Status last = util::notFound(
            "no snapshot generation exists under '%s'",
            resume_from.c_str());
        for (unsigned g = 0; g < keeper.keep(); ++g) {
            const std::string path = keeper.generationPath(g);
            const util::Status status = audit.resumeFromFile(path);
            if (status.ok()) {
                if (g > 0)
                    std::fprintf(stderr,
                                 "sdc_audit: recovered: generation %u "
                                 "(%s) is the newest valid snapshot\n",
                                 g, path.c_str());
                std::printf("resuming from %s: %" PRIu64 "/%" PRIu64
                            " module-hours done\n",
                            path.c_str(), audit.stepsDone(),
                            audit.totalSteps());
                resumed = true;
                break;
            }
            if (status.code() ==
                util::StatusCode::kFailedPrecondition)
                util::fatal("sdc_audit: cannot resume from '%s': %s",
                            path.c_str(), status.message().c_str());
            if (status.code() != util::StatusCode::kNotFound) {
                std::fprintf(stderr,
                             "sdc_audit: warning: snapshot generation "
                             "%u unusable [%s]: %s; trying an older "
                             "generation\n",
                             g, util::statusCodeName(status.code()),
                             status.message().c_str());
                last = status;
            } else if (g == 0) {
                last = status;
            }
        }
        if (!resumed)
            util::fatal("sdc_audit: cannot resume from '%s': %s (no "
                        "older generation was valid either)",
                        resume_from.c_str(), last.message().c_str());
    }
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);

    const std::uint64_t total = audit.totalSteps();
    const std::uint64_t stride = total < 10 ? 1 : total / 10;
    while (audit.step()) {
        // Epoch boundary: the only place the interrupt flag is acted
        // on, so the snapshot always captures a whole module-hour.
        if (g_interrupted != 0) {
            const std::string path = snapshot_path.empty()
                                         ? "sdc_audit.snap"
                                         : snapshot_path;
            snapshot::Serializer out;
            audit.saveState(out);
            const util::Status status = snapshot::Keeper(path).save(
                snapshot::kSdcAuditStateKind, out.data());
            if (!status.ok())
                util::fatal("sdc_audit: interrupt snapshot failed: %s",
                            status.message().c_str());
            std::fprintf(stderr,
                         "\nsdc_audit: interrupted at %" PRIu64 "/%"
                         PRIu64 " module-hours; state saved to %s\n"
                         "resume with: --resume-from=%s\n",
                         audit.stepsDone(), total, path.c_str(),
                         path.c_str());
            return 130;
        }
        if (audit.stepsDone() % stride == 0) {
            std::printf("  ... %" PRIu64 "/%" PRIu64
                        " module-hours (%.3g accesses modeled)\n",
                        audit.stepsDone(), total,
                        audit.report().modeledAccesses());
        }
    }

    const SdcAuditReport report = audit.report();
    if (report.total.unclassified != 0)
        util::fatal("sdc_audit: %" PRIu64 " unclassified accesses",
                    report.total.unclassified);
    printReport(config, report);

    if (!snapshot_path.empty()) {
        snapshot::Serializer out;
        audit.saveState(out);
        const util::Status status = snapshot::Keeper(snapshot_path)
                                        .save(snapshot::kSdcAuditStateKind,
                                              out.data());
        if (!status.ok())
            util::fatal("sdc_audit: snapshot failed: %s",
                        status.message().c_str());
        std::printf("snapshot written to %s\n", snapshot_path.c_str());
    }
    if (!telemetry_dir.empty())
        exportTelemetry(telemetry_dir, audit, timer);
    return 0;
}
