/**
 * @file
 * Table III: the two evaluated memory hierarchies.
 */

#include <cstdio>

#include "node/config.hh"
#include "util/table.hh"

int
main()
{
    using namespace hdmr;
    using namespace hdmr::node;

    std::printf("TABLE III: Real system configurations\n");
    util::Table table({"", "Memory Hierarchy1", "Memory Hierarchy2"});

    const HierarchyConfig h1 = HierarchyConfig::hierarchy1();
    const HierarchyConfig h2 = HierarchyConfig::hierarchy2();

    auto mib = [](const HierarchyConfig &h) {
        return util::formatDouble(h.l2MiBPerCore + h.l3MiBPerCore, 3) +
               " MB / core";
    };
    table.row().cell("L2$+L3$ per core").cell(mib(h1)).cell(mib(h2));
    table.row()
        .cell("Cores")
        .cell(std::to_string(h1.cores) + " cores")
        .cell(std::to_string(h2.cores) + " cores");
    auto channels = [](const HierarchyConfig &h) {
        return std::to_string(h.channels) + " channel(s), " +
               std::to_string(h.modulesPerChannel) +
               " modules/channel, " +
               std::to_string(h.ranksPerModule) + " ranks/module";
    };
    table.row()
        .cell("Memory Channels")
        .cell(channels(h1))
        .cell(channels(h2));
    table.print();
    return 0;
}
