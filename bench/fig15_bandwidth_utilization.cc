/**
 * @file
 * Fig. 15: DRAM bandwidth utilization (read/write split) per
 * benchmark at the manufacturer-specified setting under Hierarchy 1.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "eval_common.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main(int argc, char **argv)
{
    using namespace hdmr;
    using namespace hdmr::bench;

    EvalHarness harness("fig15_bandwidth_utilization", argc, argv);
    const EvalSizing sizing;
    const auto grid = EvalGrid::runOrLoad(
        "results/fig05_results.csv", marginSettingsGrid(sizing),
        harness.threads());

    std::printf("FIG. 15: Average DRAM bandwidth utilization "
                "(Commercial Baseline, Hierarchy 1)\n\n");

    const double peak = util::channelPeakBandwidth(3200) / 1.0e9;
    util::Table table({"benchmark", "suite", "read GB/s", "write GB/s",
                       "utilization", "write share", "MPI time"});
    std::vector<double> write_shares;
    for (const auto &w : wl::benchmarkCatalog()) {
        const auto &row = grid.lookup(w.name, "Hierarchy1",
                                      "Commercial Baseline", 800, 1);
        const double write_share =
            row.writeBandwidthGBs /
            (row.readBandwidthGBs + row.writeBandwidthGBs);
        write_shares.push_back(write_share);
        table.row()
            .cell(w.name)
            .cell(w.suite)
            .cell(row.readBandwidthGBs, 1)
            .cell(row.writeBandwidthGBs, 1)
            .cell(util::formatPercent(row.busUtilization, 0))
            .cell(util::formatPercent(write_share, 0))
            .cell(util::formatPercent(row.commFraction, 0));
    }
    table.print();

    std::printf("\nChannel peak at 3200 MT/s: %.1f GB/s. Mean write "
                "share: %s (paper: writes ~15%% of accesses). Paper "
                "also reports ~13%% of core-hours in MPI under "
                "Hierarchy 1.\n",
                peak,
                util::formatPercent(util::mean(write_shares)).c_str());
    return harness.finish({&grid});
}
