/**
 * @file
 * Fig. 12: performance of FMR, Hetero-DMR and Hetero-DMR+FMR
 * normalized to the Commercial Baseline, per memory-usage bucket and
 * weighted across buckets (Fig. 1 weights) and node margins
 * (Section III-D3 weights), per hierarchy, averaged across suites.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "eval_common.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::bench;

/** Normalized perf of one design/bucket/margin for one benchmark. */
double
normalizedPerf(const EvalGrid &grid, const std::string &benchmark,
               const std::string &hierarchy, const std::string &design,
               unsigned margin, unsigned bucket)
{
    const double base = grid.lookup(benchmark, hierarchy,
                                    "Commercial Baseline", 800, 1)
                            .execSeconds;

    // Resolve which measured behaviour the design exhibits in the
    // bucket (Section IV-A fallbacks).
    std::string system = design;
    unsigned usage = 1;
    unsigned m = margin;
    if (bucket == 2) {
        system = "Commercial Baseline";
        m = 800;
    } else if (design == "FMR") {
        system = "FMR";
        m = 800;
    } else if (design == "Hetero-DMR") {
        system = "Hetero-DMR";
    } else if (design == "Hetero-DMR+FMR") {
        if (bucket == 0) {
            system = "Hetero-DMR+FMR";
            usage = 0;
        } else {
            system = "Hetero-DMR"; // regresses at [25,50)
        }
    } else {
        m = 800;
    }
    const double exec =
        grid.lookup(benchmark, hierarchy, system, m, usage).execSeconds;
    return base / exec;
}

} // namespace

int
main(int argc, char **argv)
{
    EvalHarness harness("fig12_normalized_performance", argc, argv);
    const EvalSizing sizing;
    const auto grid =
        EvalGrid::runOrLoad("results/eval_results.csv",
                            evaluationGrid(sizing), harness.threads());

    const UsageWeights usage;
    const MarginWeights margins;
    const char *designs[] = {"FMR", "Hetero-DMR", "Hetero-DMR+FMR"};

    std::printf("FIG. 12: Performance normalized to Commercial "
                "Baseline (suite-equal average)\n\n");

    std::map<std::string, double> headline; // design -> across-hier sum
    for (const auto &hierarchy : {"Hierarchy1", "Hierarchy2"}) {
        std::printf("%s:\n", hierarchy);
        util::Table table({"design", "margin", "[0~25%)", "[25~50%)",
                           "[50~100%]", "[0~100%] weighted"});

        for (const char *design : designs) {
            const bool margin_dependent =
                std::string(design) != "FMR";
            for (const unsigned margin :
                 margin_dependent ? std::vector<unsigned>{800, 600}
                                  : std::vector<unsigned>{800}) {
                double bucket_perf[3] = {0, 0, 0};
                for (unsigned b = 0; b < 3; ++b) {
                    std::map<std::string, std::vector<double>> suites;
                    for (const auto &w : wl::benchmarkCatalog()) {
                        suites[w.suite].push_back(
                            normalizedPerf(grid, w.name, hierarchy,
                                           design, margin, b));
                    }
                    bucket_perf[b] = suiteAverage(suites);
                }
                const double weighted =
                    usage.under25 * bucket_perf[0] +
                    usage.under25to50 * bucket_perf[1] +
                    usage.over50 * bucket_perf[2];
                table.row()
                    .cell(design)
                    .cell(margin_dependent
                              ? std::to_string(margin) + " MT/s"
                              : std::string("-"))
                    .cell(util::formatPercent(bucket_perf[0], 0))
                    .cell(util::formatPercent(bucket_perf[1], 0))
                    .cell(util::formatPercent(bucket_perf[2], 0))
                    .cell(util::formatPercent(weighted, 0));

                // Headline accumulation: margin-weighted.
                if (margin_dependent) {
                    const double w_margin = margin == 800
                                                ? margins.at800
                                                : margins.at600;
                    headline[design] += w_margin * weighted;
                } else {
                    headline[design] +=
                        (margins.at800 + margins.at600) * weighted;
                }
            }
            // The 2% no-margin nodes behave like the baseline.
            headline[design] += margins.at0 * 1.0;
        }
        table.print();
        std::printf("\n");
    }

    std::printf("Weighted average across usage buckets, margins and "
                "hierarchies (paper's headline):\n");
    for (const char *design : designs) {
        std::printf("  %-16s %+0.0f%% vs Commercial Baseline\n", design,
                    (headline[design] / 2.0 - 1.0) * 100.0);
    }
    std::printf("Paper: Hetero-DMR +18%% over the baseline; "
                "Hetero-DMR+FMR +15%% over FMR.\n");

    // Hetero-DMR+FMR vs FMR.
    std::printf("Hetero-DMR+FMR over FMR: %+0.0f%% (paper: +15%%)\n",
                (headline["Hetero-DMR+FMR"] / headline["FMR"] - 1.0) *
                    100.0);
    return harness.finish({&grid});
}
