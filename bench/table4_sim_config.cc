/**
 * @file
 * Table IV: simulated CPU and memory parameters.
 */

#include <cstdio>

#include "cpu/core.hh"
#include "dram/controller.hh"
#include "util/table.hh"

int
main()
{
    using namespace hdmr;

    const cpu::CoreConfig core;
    const dram::ControllerConfig controller;

    std::printf("TABLE IV: Simulated CPU and memory parameters\n");
    util::Table table({"component", "configuration"});
    table.row().cell("Cores").cell(
        util::formatDouble(core.freqMhz / 1000.0, 1) + " GHz, " +
        std::to_string(core.issueWidth) + "-wide OoO, " +
        std::to_string(core.robSize) + "-entry ROB, " +
        std::to_string(core.maxOutstandingMisses) + " MSHRs");
    table.row().cell("L1$").cell(
        "Split 64 kB, 8-way, 3-cycle latency");
    table.row().cell("L1$ prefetcher").cell(
        "Stride (stream table), next-line with auto turn-off");
    table.row().cell("L2$").cell(
        "1 MB per core, 16-way, 12-cycle latency");
    table.row().cell("L3$").cell("per Table III, 22 ns latency");
    table.row().cell("Memory controller").cell(
        "DDR4, " + std::to_string(controller.ranksPerChannel) +
        " ranks/channel, " + std::to_string(controller.banksPerRank) +
        " banks/rank, FR-FCFS with age guard");
    table.row().cell("Page policy").cell(
        "Hybrid, " +
        util::formatDouble(util::ticksToNs(controller.pagePolicyTimeout),
                           0) +
        " ns timeout, XOR-folded bank mapping (Skylake-like)");
    table.row().cell("Read queue").cell(
        std::to_string(controller.readQueueCapacity) +
        " entries/channel");
    table.row().cell("Write queue").cell(
        std::to_string(controller.writeQueueCapacity) +
        " entries/channel + 128 KB 64-way victim write-back cache");
    table.print();
    return 0;
}
