#include "eval_common.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "traces/csv.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace hdmr::bench
{

using node::HierarchyConfig;
using node::MemorySystemKind;
using node::NodeConfig;

std::string
rowKey(const std::string &benchmark, const std::string &hierarchy,
       const std::string &system, unsigned margin,
       unsigned usage_class)
{
    std::ostringstream key;
    key << benchmark << '|' << hierarchy << '|' << system << '|'
        << margin << '|' << usage_class;
    return key.str();
}

EvalRow
describe(const NodeConfig &config)
{
    EvalRow row;
    row.benchmark = config.workload.name;
    row.suite = config.workload.suite;
    row.hierarchy = config.hierarchy.name;
    row.system = node::toString(config.memorySystem);
    row.marginMts = config.nodeMarginMts;
    row.usageClass = static_cast<unsigned>(config.usage);
    return row;
}

namespace
{

std::string
serialize(const EvalRow &row)
{
    std::ostringstream out;
    out << row.benchmark << ',' << row.suite << ',' << row.hierarchy
        << ',' << row.system << ',' << row.marginMts << ','
        << row.usageClass << ',' << row.execSeconds << ',' << row.epiNj
        << ',' << row.dramAccessesPerInstruction << ','
        << row.busUtilization << ',' << row.readBandwidthGBs << ','
        << row.writeBandwidthGBs << ',' << row.commFraction << ','
        << row.corrections;
    return out.str();
}

/**
 * Strict cache-row parsing: a result cache is machine-written, so any
 * malformed line means the file is corrupt (truncated write, disk
 * fault, manual edit) and silently skipping it would quietly re-run -
 * or worse, mis-plot - that configuration.  Reject loudly, naming the
 * file, line and field.
 */
EvalRow
deserialize(const traces::CsvCursor &at, const std::string &line)
{
    const auto fields = traces::splitCsvLine(at, line, 14);
    constexpr double kHuge = 1.0e18;
    for (unsigned i = 0; i < 4; ++i) {
        if (fields[i].empty()) {
            util::fatal("%s:%zu: field %u: empty name",
                        at.file.c_str(), at.line, i + 1);
        }
    }
    EvalRow row;
    row.benchmark = fields[0];
    row.suite = fields[1];
    row.hierarchy = fields[2];
    row.system = fields[3];
    row.marginMts = static_cast<unsigned>(
        traces::parseCsvUnsigned(at, "marginMts", fields[4], 0, 100000));
    row.usageClass = static_cast<unsigned>(
        traces::parseCsvUnsigned(at, "usageClass", fields[5], 0, 2));
    row.execSeconds = traces::parseCsvDouble(at, "execSeconds",
                                             fields[6], 0.0, kHuge);
    row.epiNj =
        traces::parseCsvDouble(at, "epiNj", fields[7], 0.0, kHuge);
    row.dramAccessesPerInstruction = traces::parseCsvDouble(
        at, "dramAccessesPerInstruction", fields[8], 0.0, kHuge);
    row.busUtilization = traces::parseCsvDouble(
        at, "busUtilization", fields[9], 0.0, 1.0);
    row.readBandwidthGBs = traces::parseCsvDouble(
        at, "readBandwidthGBs", fields[10], 0.0, kHuge);
    row.writeBandwidthGBs = traces::parseCsvDouble(
        at, "writeBandwidthGBs", fields[11], 0.0, kHuge);
    row.commFraction = traces::parseCsvDouble(at, "commFraction",
                                              fields[12], 0.0, 1.0);
    row.corrections = traces::parseCsvDouble(at, "corrections",
                                             fields[13], 0.0, kHuge);
    return row;
}

} // anonymous namespace

EvalGrid
EvalGrid::runOrLoad(const std::string &cache_path,
                    const std::vector<NodeConfig> &configs)
{
    EvalGrid grid;

    std::ifstream cache(cache_path);
    if (cache) {
        traces::CsvCursor at{cache_path, 0};
        std::string line;
        while (std::getline(cache, line)) {
            ++at.line;
            if (line.empty() || line[0] == '#')
                continue;
            EvalRow row = deserialize(at, line);
            grid.index_[rowKey(row.benchmark, row.hierarchy,
                               row.system, row.marginMts,
                               row.usageClass)] = grid.rows_.size();
            grid.rows_.push_back(std::move(row));
        }
        // Use the cache only if it covers every requested config.
        bool complete = true;
        for (const auto &config : configs) {
            const EvalRow probe = describe(config);
            complete &= grid.index_.count(
                            rowKey(probe.benchmark, probe.hierarchy,
                                   probe.system, probe.marginMts,
                                   probe.usageClass)) > 0;
        }
        if (complete && !configs.empty()) {
            std::fprintf(stderr, "[eval] loaded %zu rows from %s\n",
                         grid.rows_.size(), cache_path.c_str());
            return grid;
        }
        grid.rows_.clear();
        grid.index_.clear();
    }

    std::fprintf(stderr, "[eval] running %zu node simulations...\n",
                 configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        node::NodeSystem system(configs[i]);
        const node::NodeStats stats = system.run();
        EvalRow row = describe(configs[i]);
        row.execSeconds = stats.execSeconds;
        row.epiNj = stats.energy.epiNj;
        row.dramAccessesPerInstruction =
            stats.dramAccessesPerInstruction;
        row.busUtilization = stats.busUtilization;
        row.readBandwidthGBs = stats.readBandwidthGBs;
        row.writeBandwidthGBs = stats.writeBandwidthGBs;
        row.commFraction = stats.commFraction;
        row.corrections = static_cast<double>(stats.corrections);
        grid.index_[rowKey(row.benchmark, row.hierarchy, row.system,
                           row.marginMts, row.usageClass)] =
            grid.rows_.size();
        grid.rows_.push_back(std::move(row));
        if ((i + 1) % 10 == 0 || i + 1 == configs.size()) {
            std::fprintf(stderr, "[eval] %zu/%zu\r", i + 1,
                         configs.size());
        }
    }
    std::fprintf(stderr, "\n");

    std::ofstream out(cache_path);
    for (const EvalRow &row : grid.rows_)
        out << serialize(row) << '\n';
    return grid;
}

const EvalRow &
EvalGrid::lookup(const std::string &benchmark,
                 const std::string &hierarchy, const std::string &system,
                 unsigned margin, unsigned usage_class) const
{
    const auto it = index_.find(
        rowKey(benchmark, hierarchy, system, margin, usage_class));
    if (it == index_.end()) {
        util::fatal("missing evaluation row %s/%s/%s/%u/%u",
                    benchmark.c_str(), hierarchy.c_str(),
                    system.c_str(), margin, usage_class);
    }
    return rows_[it->second];
}

bool
EvalGrid::contains(const std::string &key) const
{
    return index_.count(key) > 0;
}

std::vector<NodeConfig>
evaluationGrid(const EvalSizing &sizing)
{
    std::vector<NodeConfig> configs;
    const auto hierarchies = {HierarchyConfig::hierarchy1(),
                              HierarchyConfig::hierarchy2()};

    for (const auto &hierarchy : hierarchies) {
        for (const auto &workload : wl::benchmarkCatalog()) {
            auto push = [&](MemorySystemKind kind, unsigned margin,
                            core::MemoryUsage usage) {
                NodeConfig config;
                config.hierarchy = hierarchy;
                config.workload = workload;
                config.memorySystem = kind;
                config.nodeMarginMts = margin;
                config.usage = usage;
                config.memOpsPerCore = sizing.memOpsPerCore;
                config.warmupOpsPerCore = sizing.warmupOpsPerCore;
                configs.push_back(config);
            };
            // Distinct behaviours only; bucket-weighted numbers are
            // composed from these (Section IV-A).
            push(MemorySystemKind::kCommercialBaseline, 800,
                 core::MemoryUsage::kUnder50);
            push(MemorySystemKind::kFmr, 800,
                 core::MemoryUsage::kUnder50);
            for (const unsigned margin : {800u, 600u}) {
                push(MemorySystemKind::kHeteroDmr, margin,
                     core::MemoryUsage::kUnder50);
                push(MemorySystemKind::kHeteroDmrFmr, margin,
                     core::MemoryUsage::kUnder25);
            }
        }
    }
    return configs;
}

std::vector<NodeConfig>
marginSettingsGrid(const EvalSizing &sizing)
{
    std::vector<NodeConfig> configs;
    const auto hierarchies = {HierarchyConfig::hierarchy1(),
                              HierarchyConfig::hierarchy2()};
    for (const auto &hierarchy : hierarchies) {
        for (const auto &workload : wl::benchmarkCatalog()) {
            for (const auto kind :
                 {MemorySystemKind::kCommercialBaseline,
                  MemorySystemKind::kExploitLatency,
                  MemorySystemKind::kExploitFrequency,
                  MemorySystemKind::kExploitFreqLat}) {
                NodeConfig config;
                config.hierarchy = hierarchy;
                config.workload = workload;
                config.memorySystem = kind;
                config.nodeMarginMts = 800;
                config.usage = core::MemoryUsage::kUnder50;
                config.memOpsPerCore = sizing.memOpsPerCore;
                config.warmupOpsPerCore = sizing.warmupOpsPerCore;
                configs.push_back(config);
            }
        }
    }
    return configs;
}

double
suiteAverage(
    const std::map<std::string, std::vector<double>> &per_suite_values)
{
    std::vector<double> suite_means;
    for (const auto &[suite, values] : per_suite_values)
        suite_means.push_back(util::mean(values));
    return util::mean(suite_means);
}

} // namespace hdmr::bench
