#include "eval_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "node/runner.hh"
#include "telemetry/sinks.hh"
#include "traces/csv.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace hdmr::bench
{

using node::HierarchyConfig;
using node::MemorySystemKind;
using node::NodeConfig;

std::string
rowKey(const std::string &benchmark, const std::string &hierarchy,
       const std::string &system, unsigned margin,
       unsigned usage_class)
{
    std::ostringstream key;
    key << benchmark << '|' << hierarchy << '|' << system << '|'
        << margin << '|' << usage_class;
    return key.str();
}

EvalRow
describe(const NodeConfig &config)
{
    EvalRow row;
    row.benchmark = config.workload.name;
    row.suite = config.workload.suite;
    row.hierarchy = config.hierarchy.name;
    row.system = node::toString(config.memorySystem);
    row.marginMts = config.nodeMarginMts;
    row.usageClass = static_cast<unsigned>(config.usage);
    return row;
}

EvalGrid
EvalGrid::runOrLoad(const std::string &cache_path,
                    const std::vector<NodeConfig> &configs,
                    unsigned threads)
{
    EvalGrid grid;

    std::ifstream cache(cache_path);
    if (cache) {
        // Strict cache parsing (see eval_cache.hh): a corrupt cache is
        // a fatal condition for the figure CLIs, not a silent re-run.
        std::vector<EvalRow> rows;
        util::checkOk(loadEvalCache(cache, cache_path, &rows));
        for (EvalRow &row : rows) {
            grid.index_[rowKey(row.benchmark, row.hierarchy,
                               row.system, row.marginMts,
                               row.usageClass)] = grid.rows_.size();
            grid.rows_.push_back(std::move(row));
        }
        // Use the cache only if it covers every requested config.
        bool complete = true;
        for (const auto &config : configs) {
            const EvalRow probe = describe(config);
            complete &= grid.index_.count(
                            rowKey(probe.benchmark, probe.hierarchy,
                                   probe.system, probe.marginMts,
                                   probe.usageClass)) > 0;
        }
        if (complete && !configs.empty()) {
            std::fprintf(stderr, "[eval] loaded %zu rows from %s\n",
                         grid.rows_.size(), cache_path.c_str());
            return grid;
        }
        grid.rows_.clear();
        grid.index_.clear();
    }

    std::fprintf(stderr, "[eval] running %zu node simulations...\n",
                 configs.size());
    const std::vector<node::NodeStats> all_stats =
        node::runGrid(configs, threads);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const node::NodeStats &stats = all_stats[i];
        EvalRow row = describe(configs[i]);
        row.execSeconds = stats.execSeconds;
        row.epiNj = stats.energy.epiNj;
        row.dramAccessesPerInstruction =
            stats.dramAccessesPerInstruction;
        row.busUtilization = stats.busUtilization;
        row.readBandwidthGBs = stats.readBandwidthGBs;
        row.writeBandwidthGBs = stats.writeBandwidthGBs;
        row.commFraction = stats.commFraction;
        row.corrections = static_cast<double>(stats.corrections);
        grid.simSeconds_ += stats.execSeconds;
        grid.simEvents_ += stats.memOps;
        grid.index_[rowKey(row.benchmark, row.hierarchy, row.system,
                           row.marginMts, row.usageClass)] =
            grid.rows_.size();
        grid.rows_.push_back(std::move(row));
    }
    std::fprintf(stderr, "[eval] %zu/%zu done\n", configs.size(),
                 configs.size());

    const std::filesystem::path parent =
        std::filesystem::path(cache_path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream out(cache_path);
    for (const EvalRow &row : grid.rows_)
        out << serializeEvalRow(row) << '\n';
    return grid;
}

const EvalRow &
EvalGrid::lookup(const std::string &benchmark,
                 const std::string &hierarchy, const std::string &system,
                 unsigned margin, unsigned usage_class) const
{
    const auto it = index_.find(
        rowKey(benchmark, hierarchy, system, margin, usage_class));
    if (it == index_.end()) {
        util::fatal("missing evaluation row %s/%s/%s/%u/%u",
                    benchmark.c_str(), hierarchy.c_str(),
                    system.c_str(), margin, usage_class);
    }
    return rows_[it->second];
}

bool
EvalGrid::contains(const std::string &key) const
{
    return index_.count(key) > 0;
}

std::vector<NodeConfig>
evaluationGrid(const EvalSizing &sizing)
{
    std::vector<NodeConfig> configs;
    const auto hierarchies = {HierarchyConfig::hierarchy1(),
                              HierarchyConfig::hierarchy2()};

    for (const auto &hierarchy : hierarchies) {
        for (const auto &workload : wl::benchmarkCatalog()) {
            auto push = [&](MemorySystemKind kind, unsigned margin,
                            core::MemoryUsage usage) {
                NodeConfig config;
                config.hierarchy = hierarchy;
                config.workload = workload;
                config.memorySystem = kind;
                config.nodeMarginMts = margin;
                config.usage = usage;
                config.memOpsPerCore = sizing.memOpsPerCore;
                config.warmupOpsPerCore = sizing.warmupOpsPerCore;
                configs.push_back(config);
            };
            // Distinct behaviours only; bucket-weighted numbers are
            // composed from these (Section IV-A).
            push(MemorySystemKind::kCommercialBaseline, 800,
                 core::MemoryUsage::kUnder50);
            push(MemorySystemKind::kFmr, 800,
                 core::MemoryUsage::kUnder50);
            for (const unsigned margin : {800u, 600u}) {
                push(MemorySystemKind::kHeteroDmr, margin,
                     core::MemoryUsage::kUnder50);
                push(MemorySystemKind::kHeteroDmrFmr, margin,
                     core::MemoryUsage::kUnder25);
            }
        }
    }
    return configs;
}

std::vector<NodeConfig>
marginSettingsGrid(const EvalSizing &sizing)
{
    std::vector<NodeConfig> configs;
    const auto hierarchies = {HierarchyConfig::hierarchy1(),
                              HierarchyConfig::hierarchy2()};
    for (const auto &hierarchy : hierarchies) {
        for (const auto &workload : wl::benchmarkCatalog()) {
            for (const auto kind :
                 {MemorySystemKind::kCommercialBaseline,
                  MemorySystemKind::kExploitLatency,
                  MemorySystemKind::kExploitFrequency,
                  MemorySystemKind::kExploitFreqLat}) {
                NodeConfig config;
                config.hierarchy = hierarchy;
                config.workload = workload;
                config.memorySystem = kind;
                config.nodeMarginMts = 800;
                config.usage = core::MemoryUsage::kUnder50;
                config.memOpsPerCore = sizing.memOpsPerCore;
                config.warmupOpsPerCore = sizing.warmupOpsPerCore;
                configs.push_back(config);
            }
        }
    }
    return configs;
}

EvalHarness::EvalHarness(std::string bench_name, int argc, char **argv)
    : bench_(std::move(bench_name))
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--telemetry-out=", 16) == 0) {
            telemetryDir_ = arg + 16;
            if (telemetryDir_.empty())
                util::fatal("--telemetry-out expects a directory name");
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            char *end = nullptr;
            const unsigned long value = std::strtoul(arg + 10, &end, 10);
            if (end == arg + 10 || *end != '\0' || value > 4096)
                util::fatal("--threads expects a worker count "
                            "(got '%s')",
                            arg + 10);
            threads_ = static_cast<unsigned>(value);
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf("usage: %s [options]\n"
                        "  --telemetry-out=<dir>  export grid metrics "
                        "and BENCH_%s.json\n"
                        "  --threads=<n>          worker threads for "
                        "fresh grid runs\n"
                        "  --help                 this text\n",
                        bench_.c_str(), bench_.c_str());
            std::exit(0);
        } else {
            util::fatal("unknown argument '%s' (try --help)", arg);
        }
    }
}

int
EvalHarness::finish(std::initializer_list<const EvalGrid *> grids)
{
    if (!telemetryEnabled())
        return 0;

    std::error_code ec;
    std::filesystem::create_directories(telemetryDir_, ec);
    if (ec) {
        std::fprintf(stderr,
                     "warning: cannot create telemetry directory "
                     "'%s': %s\n",
                     telemetryDir_.c_str(), ec.message().c_str());
        return 0;
    }

    telemetry::Registry registry;
    double sim_seconds = 0.0;
    std::uint64_t sim_events = 0;
    for (const EvalGrid *grid : grids) {
        sim_seconds += grid->simSeconds();
        sim_events += grid->simEvents();
        for (const EvalRow &row : grid->rows()) {
            const std::string prefix =
                "eval." +
                telemetry::sanitizeMetricComponent(row.hierarchy) +
                "." +
                telemetry::sanitizeMetricComponent(row.system) +
                ".m" + std::to_string(row.marginMts) + ".u" +
                std::to_string(row.usageClass) + "." +
                telemetry::sanitizeMetricComponent(row.benchmark);
            registry.gauge(prefix + ".exec_seconds")
                .set(row.execSeconds);
            registry.gauge(prefix + ".epi_nj").set(row.epiNj);
            registry.gauge(prefix + ".dram_accesses_per_instruction")
                .set(row.dramAccessesPerInstruction);
            registry.gauge(prefix + ".bus_utilization")
                .set(row.busUtilization);
            registry.gauge(prefix + ".read_bandwidth_gbs")
                .set(row.readBandwidthGBs);
            registry.gauge(prefix + ".write_bandwidth_gbs")
                .set(row.writeBandwidthGBs);
        }
    }

    std::string error;
    const std::string csv_path = telemetryDir_ + "/metrics.csv";
    if (!telemetry::writeMetricsCsv(registry, csv_path, &error))
        std::fprintf(stderr, "warning: %s\n", error.c_str());
    const std::string json_path = telemetryDir_ + "/metrics.json";
    if (!telemetry::writeMetricsJson(registry, json_path, &error))
        std::fprintf(stderr, "warning: %s\n", error.c_str());

    telemetry::BenchRecord record;
    record.bench = bench_;
    record.gitSha = telemetry::currentGitSha();
    record.wallSeconds = timer_.seconds();
    record.simSeconds = sim_seconds;
    record.simEvents = sim_events;
    record.peakRssBytes = telemetry::currentPeakRssBytes();
    if (threads_ > 0) {
        record.threads = threads_;
    } else {
        const unsigned hw = std::thread::hardware_concurrency();
        record.threads = hw == 0 ? 4 : hw;
    }
    std::string record_path;
    if (!telemetry::writeBenchRecord(telemetryDir_, record, &error,
                                     &record_path))
        std::fprintf(stderr, "warning: %s\n", error.c_str());

    std::printf("\ntelemetry: %s, %s, %s\n", csv_path.c_str(),
                json_path.c_str(), record_path.c_str());
    return 0;
}

double
suiteAverage(
    const std::map<std::string, std::vector<double>> &per_suite_values)
{
    std::vector<double> suite_means;
    for (const auto &[suite, values] : per_suite_values)
        suite_means.push_back(util::mean(values));
    return util::mean(suite_means);
}

} // namespace hdmr::bench
