/**
 * @file
 * Fig. 18 (extension): resilience campaign - how much of Hetero-DMR's
 * system-wide turnaround speedup survives as injected fault intensity
 * rises.
 *
 * The campaign sweeps a global intensity knob over three cluster-scoped
 * fault processes: job-killing uncorrectable errors (recovery read of
 * the original also fails; the job is killed and requeued with capped
 * exponential backoff), permanent whole-node failures, and node margin
 * reclassifications (a node drops one margin group).  Retained speedup
 * is speedup(intensity) / speedup(0); at intensity 0 the simulation is
 * bit-identical to Fig. 17's.  UE kill times use nested per-(job,
 * attempt) realizations, so each intensity's faults are a superset of
 * the previous one's and the retained-speedup curve is monotone by
 * construction, not by luck.
 */

#include <cstdio>
#include <string>

#include "sched/cluster_sim.hh"
#include "snapshot_cli.hh"
#include "traces/job_trace.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace hdmr;

    bench::SweepRunner runner("fig18_resilience", argc, argv);

    traces::JobTraceModel trace_model;
    traces::GrizzlyTraceGenerator generator(trace_model, 42);
    const auto jobs = generator.generate();
    std::printf("FIG. 18: Fault-injection campaign (system-wide)\n");
    std::printf("trace: %zu jobs / %u nodes / %.0f days\n\n",
                jobs.size(), trace_model.systemNodes,
                trace_model.spanSeconds / 86400.0);

    sched::SpeedupTable speedups;
    speedups.at800 = 1.13;
    speedups.at600 = 1.10;

    auto simulate = [&](const std::string &label, bool hdmr,
                        double intensity, bool checkpoint) {
        sched::ClusterConfig config;
        config.heteroDmr = hdmr;
        config.marginAware = hdmr;
        config.speedups = speedups;
        config.faults.intensity = intensity;
        // Base rates per node-hour at intensity 1.  Over the 4-month
        // trace (~3.3M busy node-hours) these inject on the order of
        // 300 job-killing UEs, 9 node failures and 40 demotions.
        config.faults.uncorrectablePerHour = 1.0e-4;
        config.faults.nodeFailuresPerHour = 2.0e-6;
        config.faults.demotionsPerHour = 1.0e-5;
        config.faults.horizonSeconds = trace_model.spanSeconds;
        if (checkpoint) {
            config.resilience.checkpointIntervalSeconds = 1800.0;
            config.resilience.checkpointOverheadFraction = 0.02;
        }
        return runner.leg(label, config, jobs);
    };

    const auto conventional = simulate("conventional", false, 0.0,
                                       false);
    const auto clean = simulate("hetero-dmr-clean", true, 0.0, false);
    const double clean_speedup = conventional.meanTurnaroundSeconds /
                                 clean.meanTurnaroundSeconds;

    const double intensities[] = {0.0, 1.0, 2.0, 4.0, 6.0, 8.0};

    util::Table table({"intensity", "UE kills", "requeues",
                       "nodes failed", "nodes demoted",
                       "mean turnaround (h)", "retained speedup"});
    sched::ClusterMetrics worst;
    for (const double intensity : intensities) {
        const auto m = simulate(
            "intensity-" + std::to_string(intensity), true, intensity,
            false);
        if (runner.stoppedEarly())
            return runner.finish();
        const double speedup =
            conventional.meanTurnaroundSeconds / m.meanTurnaroundSeconds;
        table.row()
            .cell(intensity, 1)
            .cell(static_cast<double>(m.jobKills), 0)
            .cell(static_cast<double>(m.requeues), 0)
            .cell(static_cast<double>(m.nodesFailed), 0)
            .cell(static_cast<double>(m.nodesDemoted), 0)
            .cell(m.meanTurnaroundSeconds / 3600.0, 2)
            .cell(speedup / clean_speedup, 3);
        worst = m;
    }
    table.print();

    // Checkpointing recovers part of the lost work at the worst swept
    // intensity.
    const auto ckpt =
        simulate("checkpointed", true, intensities[5], true);
    if (runner.stoppedEarly())
        return runner.finish();
    std::printf("\nat intensity %.1f, 30-min checkpoints (2%% overhead):"
                "\n  turnaround %.2f h -> %.2f h, lost node-seconds "
                "%.0f -> %.0f\n",
                intensities[5], worst.meanTurnaroundSeconds / 3600.0,
                ckpt.meanTurnaroundSeconds / 3600.0,
                worst.lostNodeSeconds, ckpt.lostNodeSeconds);

    std::printf("\ncampaign accounting at intensity %.1f:\n%s",
                intensities[5], worst.counters().toString().c_str());
    return runner.finish();
}
