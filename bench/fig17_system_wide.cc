/**
 * @file
 * Fig. 17: system-wide evaluation - job execution time, queueing
 * delay and turnaround time of an HPC system with Hetero-DMR and the
 * margin-aware job scheduler, vs a conventional system, a
 * default-scheduler ablation, and the "+17% nodes" sanity check.
 */

#include <cstdio>

#include "sched/cluster_sim.hh"
#include "snapshot_cli.hh"
#include "traces/job_trace.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace hdmr;

    bench::SweepRunner runner("fig17_system_wide", argc, argv);

    traces::JobTraceModel trace_model;
    traces::GrizzlyTraceGenerator generator(trace_model, 42);
    const auto jobs = generator.generate();
    std::printf("FIG. 17: System-wide simulation\n");
    std::printf("trace: %zu jobs / %u nodes / %.0f days, offered "
                "utilization %.0f%% (Grizzly-like)\n\n",
                jobs.size(), trace_model.systemNodes,
                trace_model.spanSeconds / 86400.0,
                100.0 * traces::traceNodeSeconds(jobs) /
                    (trace_model.systemNodes * trace_model.spanSeconds));

    // Node-level Hetero-DMR speedups measured by the node simulator
    // (Fig. 12 weighted across hierarchies, <50 % usage bucket).
    sched::SpeedupTable speedups;
    speedups.at800 = 1.13;
    speedups.at600 = 1.10;

    auto simulate = [&](const char *label, bool hdmr, bool aware,
                        unsigned nodes) {
        sched::ClusterConfig config;
        config.heteroDmr = hdmr;
        config.marginAware = aware;
        config.nodes = nodes;
        config.speedups = speedups;
        return runner.leg(label, config, jobs);
    };

    const auto conventional =
        simulate("conventional", false, false, 1490);
    const auto hdmr = simulate("hetero-dmr", true, true, 1490);
    const auto hdmr_default =
        simulate("hetero-dmr-default-sched", true, false, 1490);
    const auto more_nodes =
        simulate("conventional-more-nodes", false, false, 1743); // +17 %
    if (runner.stoppedEarly())
        return runner.finish();

    util::Table table({"system", "mean exec (h)", "mean queue (h)",
                       "mean turnaround (h)", "utilization"});
    auto add = [&](const char *label,
                   const sched::ClusterMetrics &m) {
        table.row()
            .cell(label)
            .cell(m.meanExecSeconds / 3600.0, 2)
            .cell(m.meanQueueSeconds / 3600.0, 2)
            .cell(m.meanTurnaroundSeconds / 3600.0, 2)
            .cell(util::formatPercent(m.meanNodeUtilization, 0));
    };
    add("conventional", conventional);
    add("Hetero-DMR + margin-aware sched", hdmr);
    add("Hetero-DMR + default sched", hdmr_default);
    add("conventional + 17% nodes", more_nodes);
    table.print();

    std::printf("\nHetero-DMR vs conventional:\n");
    std::printf("  execution-time speedup:  %s (paper: 1.17x)\n",
                util::formatSpeedup(conventional.meanExecSeconds /
                                    hdmr.meanExecSeconds)
                    .c_str());
    std::printf("  queueing-delay change:   %+.0f%% (paper: -34%%)\n",
                (hdmr.meanQueueSeconds / conventional.meanQueueSeconds -
                 1.0) *
                    100.0);
    std::printf("  turnaround speedup:      %s (paper: 1.4x)\n",
                util::formatSpeedup(conventional.meanTurnaroundSeconds /
                                    hdmr.meanTurnaroundSeconds)
                    .c_str());
    std::printf("  margin-aware vs default: %s turnaround "
                "(paper: 1.2x)\n",
                util::formatSpeedup(
                    hdmr_default.meanTurnaroundSeconds /
                    hdmr.meanTurnaroundSeconds)
                    .c_str());
    std::printf("  +17%% nodes queue delta:  %+.0f%% (paper: -33%%, "
                "close to Hetero-DMR's reduction)\n",
                (more_nodes.meanQueueSeconds /
                     conventional.meanQueueSeconds -
                 1.0) *
                    100.0);
    return runner.finish();
}
