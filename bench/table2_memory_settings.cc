/**
 * @file
 * Table II: the four memory operating settings, plus the derived
 * tick-level timing packages the simulator uses.
 */

#include <cstdio>

#include "dram/timing.hh"
#include "util/table.hh"

int
main()
{
    using namespace hdmr;
    using namespace hdmr::dram;

    const MemorySetting settings[] = {
        MemorySetting::manufacturerSpec(),
        MemorySetting::exploitLatencyMargin(),
        MemorySetting::exploitFrequencyMargin(),
        MemorySetting::exploitFreqLatMargins(),
    };

    std::printf("TABLE II: Memory settings for exploiting memory "
                "margins\n");
    util::Table table({"setting", "data rate", "tRCD", "tRP", "tRAS",
                       "tREFI"});
    for (const auto &s : settings) {
        table.row()
            .cell(s.name)
            .cell(std::to_string(s.dataRateMts) + " MT/s")
            .cell(util::formatDouble(s.trcdNs, 2) + " ns")
            .cell(util::formatDouble(s.trpNs, 2) + " ns")
            .cell(util::formatDouble(s.trasNs, 1) + " ns")
            .cell(util::formatDouble(s.trefiUs, 1) + " us");
    }
    table.print();

    std::printf("\nDerived controller timing (ticks = ps):\n");
    util::Table derived({"setting", "tCK", "tBURST", "tCAS", "tRCD",
                         "tRP", "tRAS", "tREFI"});
    for (const auto &s : settings) {
        const DramTiming t = DramTiming::fromSetting(s);
        derived.row()
            .cell(s.name)
            .cell(static_cast<long long>(t.tCK))
            .cell(static_cast<long long>(t.tBURST))
            .cell(static_cast<long long>(t.tCAS))
            .cell(static_cast<long long>(t.tRCD))
            .cell(static_cast<long long>(t.tRP))
            .cell(static_cast<long long>(t.tRAS))
            .cell(static_cast<long long>(t.tREFI));
    }
    derived.print();
    return 0;
}
