/**
 * @file
 * Shared harness code for the figure/table reproductions: runs the
 * Section IV-A evaluation grid (memory systems x margins x usage
 * buckets x hierarchies x benchmarks) through the parallel node
 * runner and caches raw results in a CSV under results/ so related
 * figures (12, 13, 14, 16) reuse one grid run.
 *
 * EvalHarness gives every grid-driven figure the shared CLI:
 *   --telemetry-out=<dir>  export grid metrics (CSV + JSON) and a
 *                          BENCH_<name>.json perf-trajectory record
 *   --threads=<n>          worker threads for fresh grid runs
 */

#ifndef HDMR_BENCH_EVAL_COMMON_HH
#define HDMR_BENCH_EVAL_COMMON_HH

#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "eval_cache.hh"
#include "node/config.hh"
#include "node/node_system.hh"
#include "telemetry/bench_record.hh"
#include "telemetry/telemetry.hh"

namespace hdmr::bench
{

/** Fig. 1 memory-usage bucket weights used for weighted averages. */
struct UsageWeights
{
    double under25 = 0.55;
    double under25to50 = 0.25;
    double over50 = 0.20;
};

/** Margin-group weights (Section III-D3). */
struct MarginWeights
{
    double at800 = 0.62;
    double at600 = 0.36;
    double at0 = 0.02;
};

/** Simulation sizing for the harnesses (kept modest: 1-core host). */
struct EvalSizing
{
    std::uint64_t memOpsPerCore = 40000;
    std::uint64_t warmupOpsPerCore = 20000;
};

/** Key for looking rows up. */
std::string rowKey(const std::string &benchmark,
                   const std::string &hierarchy,
                   const std::string &system, unsigned margin,
                   unsigned usage_class);

/** A loaded/computed grid. */
class EvalGrid
{
  public:
    /**
     * Load the grid from `cache_path` if present; otherwise run all
     * `configs` through node::runGrid on `threads` workers (0 = host
     * default) and write the cache, creating the cache's directory.
     * Progress goes to stderr.
     */
    static EvalGrid
    runOrLoad(const std::string &cache_path,
              const std::vector<node::NodeConfig> &configs,
              unsigned threads = 0);

    const EvalRow &lookup(const std::string &benchmark,
                          const std::string &hierarchy,
                          const std::string &system, unsigned margin,
                          unsigned usage_class) const;

    bool contains(const std::string &key) const;

    const std::vector<EvalRow> &rows() const { return rows_; }

    /** Simulated seconds covered by fresh runs (0 when cached). */
    double simSeconds() const { return simSeconds_; }

    /** Memory operations simulated by fresh runs (0 when cached). */
    std::uint64_t simEvents() const { return simEvents_; }

  private:
    std::vector<EvalRow> rows_;
    std::map<std::string, std::size_t> index_;
    double simSeconds_ = 0.0;
    std::uint64_t simEvents_ = 0;
};

/** Shared CLI + telemetry export for the grid-driven figures. */
class EvalHarness
{
  public:
    /** Parses the shared flags; fatal on unknown arguments. */
    EvalHarness(std::string bench_name, int argc, char **argv);

    /** Worker threads requested for fresh grid runs (0 = default). */
    unsigned threads() const { return threads_; }

    bool telemetryEnabled() const { return !telemetryDir_.empty(); }

    /**
     * Final bookkeeping: with --telemetry-out, publishes every row of
     * every grid as gauges ("eval.<hierarchy>.<system>.m<margin>.
     * u<usage>.<benchmark>.<field>"), writes metrics.csv/metrics.json
     * and the BENCH_<name>.json record.  Returns the exit code (0).
     */
    int finish(std::initializer_list<const EvalGrid *> grids);

  private:
    std::string bench_;
    std::string telemetryDir_;
    unsigned threads_ = 0;
    telemetry::WallTimer timer_;
};

/** The full Section IV-A grid (Figs. 12/13/14). */
std::vector<node::NodeConfig> evaluationGrid(const EvalSizing &sizing);

/** The Fig. 5 grid (four Table II settings, no replication). */
std::vector<node::NodeConfig> marginSettingsGrid(const EvalSizing &sizing);

/** Build the row describing a config (before stats are known). */
EvalRow describe(const node::NodeConfig &config);

/** Suite-equal-weight average of per-benchmark values. */
double suiteAverage(const std::map<std::string, std::vector<double>>
                        &per_suite_values);

} // namespace hdmr::bench

#endif // HDMR_BENCH_EVAL_COMMON_HH
