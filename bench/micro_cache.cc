/**
 * @file
 * Microbenchmarks: cache model access throughput and LLC cleaning.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "util/rng.hh"

namespace
{

using namespace hdmr;

void
BM_CacheAccess(benchmark::State &state)
{
    cache::CacheConfig config;
    config.sizeBytes = 1ull << 20;
    config.ways = 16;
    cache::Cache cache(config);
    util::Rng rng(5);
    const bool random = state.range(0) != 0;
    std::uint64_t cursor = 0;
    for (auto _ : state) {
        const std::uint64_t address =
            random ? (rng.next() % (1ull << 26)) & ~63ull
                   : (cursor += 64);
        benchmark::DoNotOptimize(
            cache.access(address, (address >> 6) % 8 == 0));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(0)->Arg(1);

void
BM_LlcCleanLruDirty(benchmark::State &state)
{
    cache::CacheConfig config;
    config.sizeBytes = 28ull << 20; // Hierarchy 1 LLC
    config.ways = 16;
    cache::Cache llc(config);
    util::Rng rng(9);
    for (std::uint64_t i = 0; i < config.numLines(); ++i)
        llc.fill(i * 64, rng.bernoulli(0.15), false);

    for (auto _ : state) {
        std::uint64_t sink = 0;
        const std::size_t cleaned = llc.cleanLruDirtyLines(
            12800, nullptr,
            [&sink](std::uint64_t addr) { sink ^= addr; }, 4);
        benchmark::DoNotOptimize(sink);
        state.PauseTiming();
        // Re-dirty for the next iteration.
        for (std::size_t i = 0; i < cleaned; ++i) {
            llc.access(rng.uniformInt(0, config.numLines() - 1) * 64,
                       true);
        }
        state.ResumeTiming();
    }
}
BENCHMARK(BM_LlcCleanLruDirty);

} // namespace

BENCHMARK_MAIN();
