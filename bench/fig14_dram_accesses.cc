/**
 * @file
 * Fig. 14: DRAM accesses per instruction of Hetero-DMR+FMR@0.8 GT/s
 * normalized to the Commercial Baseline, per benchmark, under
 * Hierarchy 1 - the write-bandwidth overhead of proactive LLC
 * cleaning.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "eval_common.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace hdmr;
    using namespace hdmr::bench;

    EvalHarness harness("fig14_dram_accesses", argc, argv);
    const EvalSizing sizing;
    const auto grid =
        EvalGrid::runOrLoad("results/eval_results.csv",
                            evaluationGrid(sizing), harness.threads());

    std::printf("FIG. 14: Normalized DRAM accesses per instruction "
                "(Hetero-DMR+FMR @ 0.8 GT/s, Hierarchy 1)\n\n");

    util::Table table({"benchmark", "suite", "normalized accesses/inst"});
    std::map<std::string, std::vector<double>> suites;
    for (const auto &w : wl::benchmarkCatalog()) {
        const double base = grid.lookup(w.name, "Hierarchy1",
                                        "Commercial Baseline", 800, 1)
                                .dramAccessesPerInstruction;
        const double hdmr = grid.lookup(w.name, "Hierarchy1",
                                        "Hetero-DMR+FMR", 800, 0)
                                .dramAccessesPerInstruction;
        const double normalized = hdmr / base;
        suites[w.suite].push_back(normalized);
        table.row()
            .cell(w.name)
            .cell(w.suite)
            .cell(util::formatPercent(normalized, 1));
    }
    table.print();

    std::printf("\nSuite-average overhead: %+.1f%% (paper: <1%% - our "
                "short measured windows bill part of the one-time "
                "cleaning transient to the run; see EXPERIMENTS.md)\n",
                (suiteAverage(suites) - 1.0) * 100.0);
    return harness.finish({&grid});
}
