/**
 * @file
 * Fig. 11: Monte-Carlo distribution of channel- and node-level
 * frequency margins under margin-aware and margin-unaware Free-Module
 * selection (Section III-D).
 */

#include <cstdio>

#include "margin/monte_carlo.hh"
#include "util/table.hh"

int
main()
{
    using namespace hdmr;
    using namespace hdmr::margin;

    MonteCarloConfig aware;
    MonteCarloConfig unaware;
    unaware.marginAware = false;

    const auto aware_channel = channelMarginDistribution(aware, 42);
    const auto unaware_channel = channelMarginDistribution(unaware, 42);
    const auto aware_node = nodeMarginDistribution(aware, 43);
    const auto unaware_node = nodeMarginDistribution(unaware, 43);

    std::printf("FIG. 11: Channel-level and node-level memory "
                "frequency margin distributions\n");
    std::printf("(module margin ~ N(%.0f, %.0f) MT/s quantized to "
                "%u MT/s, capped at %u; %zu trials)\n\n",
                aware.marginMeanMts, aware.marginStdevMts,
                aware.quantStepMts, aware.marginCapMts, aware.trials);

    util::Table table({"margin >=", "channel aware", "channel unaware",
                       "node aware", "node unaware"});
    for (const unsigned margin : {800u, 600u, 400u, 200u}) {
        table.row()
            .cell(std::to_string(margin) + " MT/s")
            .cell(util::formatPercent(
                aware_channel.fractionAtLeast(margin)))
            .cell(util::formatPercent(
                unaware_channel.fractionAtLeast(margin)))
            .cell(util::formatPercent(
                aware_node.fractionAtLeast(margin)))
            .cell(util::formatPercent(
                unaware_node.fractionAtLeast(margin)));
    }
    table.print();

    std::printf("\nPaper: channels >=0.8 GT/s: 96%% aware / 80%% "
                "unaware; nodes >=0.8: 62%% / 7%%; nodes >=0.6: "
                "98%% / 96%%.\n\n");

    const auto groups = nodeMarginGroups(aware, 44);
    std::printf("Margin-aware scheduler node groups: 0.8 GT/s: %s, "
                "0.6 GT/s: %s, none: %s (paper: 62%% / 36%% / 2%%)\n",
                util::formatPercent(groups.at800).c_str(),
                util::formatPercent(groups.at600).c_str(),
                util::formatPercent(groups.at0).c_str());
    return 0;
}
