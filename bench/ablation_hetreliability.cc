/**
 * @file
 * Heterogeneous-reliability placement ablation: what Hetero-DMR's
 * 50 % copy tax actually buys, and how much of it criticality-aware
 * placement (Luo et al.'s HRM applied to margin exploitation) can
 * reclaim without giving up margin-UE containment.
 *
 * Three placement architectures compete on the same fleet:
 *
 *   hetero-dmr        the paper's design - every fast page carries a
 *                     full copy, any margin UE kills the attempt;
 *   het-reliability   tolerant pages live *unreplicated* on the fast
 *                     modules; a UE striking one downgrades the page
 *                     and the job continues with a recorded
 *                     data-quality penalty, while critical-page UEs
 *                     keep the full kill/requeue/quarantine ladder;
 *   hybrid            per-job: HRM above a tolerant-fraction
 *                     threshold, full Hetero-DMR below it.
 *
 * Sections, each self-checked (gated, not just printed):
 *
 *   1. node capacity (fig12 pipeline): NodeSystem-measured Hetero-DMR
 *      speedups weighted across the Fig. 1 usage buckets x Sec. III-D3
 *      margin groups x application classes - HRM's slimmer replicated
 *      share makes high-usage tolerant jobs margin-eligible, so its
 *      weighted capacity must meet or beat full DMR's;
 *   2. fleet sweep (fig17 pipeline) under the PR 6 drift-chaos
 *      overlay: Het-Reliability must reclaim >= 40 % of the
 *      node-seconds Hetero-DMR spends on copies at equal-or-better
 *      mean turnaround, with every UE accounted to exactly one page
 *      class; an all-tolerant control proves the graceful-degradation
 *      path literally never kills or requeues;
 *   3. SDC audit with page-criticality classification: zero
 *      critical-page silent escapes as a raw count with the
 *      constructed-escape sampler off, and the sampled escape rate
 *      still consistent with the 2^-64 codec bound;
 *   4. interrupt/resume bit-identity of the het-reliability leg via
 *      metrics equality and the state-digest trail.
 *
 * Flags: `--smoke` (alone) runs the deterministic self-checking
 * campaign ctest registers as ablation_hetreliability_smoke; otherwise
 * the standard SweepRunner flags apply (--snapshot-every,
 * --resume-from, --telemetry-out, ... - see --help).
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/placement.hh"
#include "ecc/bamboo.hh"
#include "fault/drift_chaos.hh"
#include "node/config.hh"
#include "node/node_system.hh"
#include "sched/cluster_sim.hh"
#include "snapshot/digest.hh"
#include "snapshot_cli.hh"
#include "traces/job_trace.hh"
#include "util/logging.hh"
#include "util/status.hh"
#include "util/table.hh"
#include "verify/audit.hh"
#include "workloads/criticality.hh"

namespace
{

using namespace hdmr;

/** Organic fault rates shared by every faulted leg. */
constexpr double kNodeFailuresPerHour = 2.0e-6;
constexpr double kDemotionsPerHour = 1.0e-5;
/** Tolerant-page fraction audited in the SDC section (a solver-class
 *  footprint; the split must still pin every escape to a class). */
constexpr double kAuditTolerantFraction = 0.75;

/** The PR 6 reference drift scenario, scaled to a trace horizon. */
fault::DriftScenarioConfig
referenceScenario(double horizon_hours, unsigned modules,
                  unsigned targets_per_module, double aging_rate,
                  double spikes_per_kilo_hour)
{
    fault::DriftScenarioConfig scenario;
    scenario.drift.seed = 0xd21f7;
    scenario.drift.modules = modules;
    scenario.drift.horizonHours = horizon_hours;
    scenario.drift.agingMtsPerKiloHour = aging_rate;
    scenario.drift.agingSigma = 0.5;
    scenario.drift.agingExponent = 1.0;
    scenario.drift.cohortSize = 8;
    scenario.drift.cohortCorrelation = 0.5;
    scenario.drift.diurnalAmplitudeC = 12.0;
    scenario.drift.diurnalPeakHour = 14.0;
    scenario.drift.spikesPerKiloHour = spikes_per_kilo_hour;
    scenario.drift.spikeMeanHours = 0.25;
    scenario.drift.spikeErrorMultiplier = 6.0;
    scenario.marginStepMts = 200.0;
    scenario.targetsPerModule = targets_per_module;
    scenario.excursionThresholdC = 10.0;
    scenario.spikeBurstErrors = 200.0;
    return scenario;
}

sched::ClusterConfig
legConfig(bool hdmr, core::PlacementMode mode,
          const std::vector<fault::FaultEvent> &overlay,
          double ue_per_hour, double horizon_seconds, unsigned nodes,
          const sched::SpeedupTable &speedups)
{
    sched::ClusterConfig config;
    config.nodes = nodes;
    config.heteroDmr = hdmr;
    config.marginAware = hdmr;
    config.speedups = speedups;
    config.placement.mode = mode;
    config.faults.intensity = 1.0;
    config.faults.uncorrectablePerHour = ue_per_hour;
    config.faults.nodeFailuresPerHour = kNodeFailuresPerHour;
    config.faults.demotionsPerHour = kDemotionsPerHour;
    config.faults.horizonSeconds = horizon_seconds;
    config.scheduleOverlay = overlay;
    config.excursionUeMultiplier = 2.0;
    return config;
}

/** Capacity share the placement reclaimed from the DMR copy tax. */
double
reclaimedShare(const sched::ClusterMetrics &m)
{
    if (m.dmrCopyNodeSeconds <= 0.0)
        return 0.0;
    return 1.0 - m.copyNodeSeconds / m.dmrCopyNodeSeconds;
}

/** Incrementing check harness shared by smoke and the full campaign. */
struct Checks
{
    int failures = 0;

    void
    operator()(bool ok, const char *what)
    {
        std::printf("check: %-52s %s\n", what, ok ? "PASS" : "FAIL");
        failures += ok ? 0 : 1;
    }
};

// ---------------------------------------------------------------------
// Section 1: node capacity through the fig12 pipeline.
// ---------------------------------------------------------------------

/** Node-level Hetero-DMR speedups measured by the node simulator. */
struct NodeSpeedups
{
    double at800 = 1.0;
    double at600 = 1.0;
};

NodeSpeedups
measureNodeSpeedups(std::uint64_t mem_ops)
{
    NodeSpeedups result;
    double runs = 0.0, sum800 = 0.0, sum600 = 0.0;
    // One bandwidth-bound and one write-heavy representative.
    for (const char *name : {"hpcg", "lulesh"}) {
        node::NodeConfig config;
        config.hierarchy = node::HierarchyConfig::hierarchy1();
        config.workload = wl::benchmarkByName(name);
        config.memOpsPerCore = mem_ops;
        config.warmupOpsPerCore = mem_ops / 2;
        config.memorySystem = node::MemorySystemKind::kCommercialBaseline;
        const double baseline =
            node::NodeSystem(config).run().execSeconds;
        config.memorySystem = node::MemorySystemKind::kHeteroDmr;
        config.nodeMarginMts = 800;
        sum800 += baseline / node::NodeSystem(config).run().execSeconds;
        config.nodeMarginMts = 600;
        sum600 += baseline / node::NodeSystem(config).run().execSeconds;
        runs += 1.0;
    }
    result.at800 = sum800 / runs;
    result.at600 = sum600 / runs;
    return result;
}

/**
 * Fleet-capacity speedup of one placement: the measured node speedups
 * weighted across the Fig. 1 usage buckets, the Sec. III-D3 margin
 * groups, and the application-class mix - a job contributes its margin
 * group's speedup only where `marginEligible` lets it run fast.
 */
double
placementWeightedSpeedup(const core::PlacementPolicy &policy,
                         const wl::CriticalityConfig &criticality,
                         const NodeSpeedups &node)
{
    const double usage_weight[3] = {0.55, 0.25, 0.20}; // Fig. 1
    const double margin_weight[2] = {0.62, 0.36};      // Sec. III-D3
    const double margin_speedup[2] = {node.at800, node.at600};
    double total = 0.02; // no-margin group runs at 1.0
    for (unsigned group = 0; group < 2; ++group) {
        double bucket_sum = 0.0;
        for (unsigned bucket = 0; bucket < 3; ++bucket) {
            double class_sum = 0.0;
            for (unsigned cls = 0; cls < wl::kAppClassCount; ++cls) {
                const bool eligible = policy.marginEligible(
                    bucket, criticality.tolerantMean[cls]);
                class_sum +=
                    criticality.classWeights[cls] *
                    (eligible ? margin_speedup[group] : 1.0);
            }
            bucket_sum += usage_weight[bucket] * class_sum;
        }
        total += margin_weight[group] * bucket_sum;
    }
    return total;
}

void
runNodeSection(std::uint64_t mem_ops, Checks &check)
{
    const NodeSpeedups node = measureNodeSpeedups(mem_ops);
    const wl::CriticalityConfig criticality;

    std::printf("node speedups (NodeSystem, hpcg+lulesh mean): "
                "%.3f @0.8 GT/s, %.3f @0.6 GT/s\n\n",
                node.at800, node.at600);
    check(node.at800 > 1.0 && node.at600 > 1.0 &&
              node.at800 >= node.at600,
          "measured node speedups ordered by margin");

    util::Table table(
        {"placement", ">=50% bucket eligible classes", "weighted capacity"});
    double weighted[3] = {0.0, 0.0, 0.0};
    const core::PlacementMode modes[3] = {
        core::PlacementMode::kHeteroDmr,
        core::PlacementMode::kHetReliability,
        core::PlacementMode::kHybrid};
    for (unsigned i = 0; i < 3; ++i) {
        core::PlacementPolicy policy;
        policy.mode = modes[i];
        weighted[i] =
            placementWeightedSpeedup(policy, criticality, node);
        std::string eligible;
        for (unsigned cls = 0; cls < wl::kAppClassCount; ++cls) {
            if (policy.marginEligible(2, criticality.tolerantMean[cls])) {
                if (!eligible.empty())
                    eligible += ", ";
                eligible += wl::appClassName(cls);
            }
        }
        table.row()
            .cell(core::toString(modes[i]))
            .cell(eligible.empty() ? "none" : eligible)
            .cell(util::formatSpeedup(weighted[i]));
    }
    table.print();

    check(weighted[0] > 1.0, "hetero-dmr exploits margin capacity");
    check(weighted[1] >= weighted[0] + 1.0e-6,
          "het-reliability widens margin-eligible capacity");
    check(weighted[2] >= weighted[0] &&
              weighted[2] <= weighted[1] + 1.0e-9,
          "hybrid capacity sits between dmr and het-reliability");
}

// ---------------------------------------------------------------------
// Section 2: fleet-sweep gates.
// ---------------------------------------------------------------------

void
printFleetTable(const sched::ClusterMetrics &conventional,
                const char *const labels[4],
                const sched::ClusterMetrics *const legs[4])
{
    util::Table table({"leg", "UE kills", "tolerant UEs",
                       "pages degraded", "copy tax reclaimed",
                       "mean turnaround (h)", "speedup vs conv"});
    for (unsigned i = 0; i < 4; ++i) {
        const sched::ClusterMetrics &m = *legs[i];
        table.row()
            .cell(labels[i])
            .cell(static_cast<double>(m.jobKills), 0)
            .cell(static_cast<double>(m.tolerantUes), 0)
            .cell(static_cast<double>(m.pagesDegraded), 0)
            .cell(util::formatDouble(reclaimedShare(m) * 100.0, 1) + "%")
            .cell(m.meanTurnaroundSeconds / 3600.0, 2)
            .cell(conventional.meanTurnaroundSeconds /
                      m.meanTurnaroundSeconds,
                  3);
    }
    table.print();
}

void
runFleetChecks(const sched::ClusterMetrics &dmr,
               const sched::ClusterMetrics &hetrel,
               const sched::ClusterMetrics &hybrid, Checks &check)
{
    // Capacity: the HRM placement must reclaim >= 40 % of the
    // node-seconds full DMR spends holding copies, with the hybrid
    // landing between the two extremes.
    check(reclaimedShare(dmr) == 0.0,
          "hetero-dmr pays the full copy tax");
    check(dmr.dmrCopyNodeSeconds > 0.0 &&
              reclaimedShare(hetrel) >= 0.40,
          "het-reliability reclaims >= 40% of the copy tax");
    check(reclaimedShare(hybrid) > 0.0 &&
              reclaimedShare(hybrid) <= reclaimedShare(hetrel) + 1e-9,
          "hybrid reclaim between dmr and het-reliability");

    // Turnaround: reclaiming capacity must not cost schedule quality.
    check(hetrel.meanTurnaroundSeconds <=
              dmr.meanTurnaroundSeconds * 1.000001,
          "het-reliability turnaround no worse than dmr");

    // Degradation semantics: tolerant strikes downgrade and continue,
    // critical strikes kill - and every UE lands in exactly one bucket.
    check(hetrel.tolerantUes > 0 && hetrel.jobsDegraded > 0 &&
              hetrel.pagesDegraded == hetrel.tolerantUes &&
              hetrel.dataQualityPenalty > 0.0,
          "tolerant-page strikes degrade, continue, and are billed");
    check(hetrel.ueInjected ==
                  hetrel.tolerantUes + hetrel.criticalUes &&
              hetrel.jobKills == hetrel.criticalUes,
          "every UE accounted to exactly one page class");
    check(dmr.tolerantUes == 0 && dmr.jobsDegraded == 0 &&
              dmr.jobKills == dmr.ueInjected,
          "full dmr keeps the kill-on-any-UE ladder");
}

void
runAllTolerantControl(const sched::ClusterConfig &hetrel_config,
                      const std::vector<traces::Job> &jobs,
                      Checks &check,
                      sched::ClusterMetrics *out = nullptr)
{
    // Control: with every page tolerant, the graceful-degradation path
    // must absorb every UE burst - literally zero kills and requeues.
    sched::ClusterConfig config = hetrel_config;
    config.criticality.tolerantMean = {1.0, 1.0, 1.0};
    config.criticality.tolerantJitter = 0.0;
    const sched::ClusterMetrics control =
        out != nullptr ? *out
                       : sched::ClusterSimulator(config).run(jobs);
    check(control.ueInjected > 0 && control.jobKills == 0 &&
              control.requeues == 0 &&
              control.tolerantUes == control.ueInjected &&
              control.dataQualityPenalty > 0.0,
          "all-tolerant control: UE bursts continue, never kill");
}

// ---------------------------------------------------------------------
// Section 3: SDC audit with page-criticality classification.
// ---------------------------------------------------------------------

void
runSdcSection(const fault::DriftScenarioConfig &scenario,
              double accesses_per_hour, Checks &check)
{
    const auto escape =
        static_cast<unsigned>(verify::AccessClass::kSilentEscape);
    fault::DriftChaosCampaign chaos(scenario);
    const std::vector<fault::FaultEvent> bursts =
        chaos.schedule(fault::FaultKind::kErrorBurst);

    verify::SdcAuditConfig quiet;
    quiet.modules = scenario.drift.modules;
    quiet.hours = static_cast<unsigned>(scenario.drift.horizonHours);
    quiet.accessesPerHour = accesses_per_hour;
    quiet.escapeLambda = 0.0; // natural wide draws only
    quiet.oracle.tolerantPageFraction = kAuditTolerantFraction;
    verify::SdcAuditConfig drifted = quiet;
    drifted.scheduleOverlay = bursts;

    verify::SdcAudit baseline(quiet);
    baseline.run();
    verify::SdcAudit drift(drifted);
    drift.run();
    const verify::SdcAuditReport base_report = baseline.report();
    const verify::SdcAuditReport drift_report = drift.report();

    std::printf("\nSDC page-class containment (%zu burst events):\n"
                "  %-28s %18s %18s\n"
                "  %-28s %18llu %18llu\n"
                "  %-28s %18llu %18llu\n"
                "  %-28s %18llu %18llu\n",
                bursts.size(), "", "baseline", "drift",
                "detected errors",
                static_cast<unsigned long long>(
                    base_report.detectedErrors),
                static_cast<unsigned long long>(
                    drift_report.detectedErrors),
                "critical-page escapes (raw)",
                static_cast<unsigned long long>(
                    base_report.total.escapesByPageClass[0]),
                static_cast<unsigned long long>(
                    drift_report.total.escapesByPageClass[0]),
                "tolerant-page escapes (raw)",
                static_cast<unsigned long long>(
                    base_report.total.escapesByPageClass[1]),
                static_cast<unsigned long long>(
                    drift_report.total.escapesByPageClass[1]));

    check(base_report.total.unclassified == 0 &&
              drift_report.total.unclassified == 0,
          "every audited access classified");
    check(drift_report.detectedErrors > base_report.detectedErrors,
          "drift bursts raise detected-error pressure");
    check(base_report.total.escapesByPageClass[0] == 0 &&
              drift_report.total.escapesByPageClass[0] == 0,
          "zero critical-page silent escapes (raw)");

    // Importance-sampled pass: every constructed escape must still be
    // pinned to a page class, and the measured per-wide-error escape
    // probability must stay consistent with the codec's 2^-64 bound.
    verify::SdcAuditConfig sampled = drifted;
    sampled.escapeLambda = 0.5;
    sampled.wideOversample = 0.5;
    verify::SdcAudit tail(sampled);
    tail.run();
    const verify::SdcAuditReport tail_report = tail.report();
    check(tail_report.total.escapesByPageClass[0] +
                  tail_report.total.escapesByPageClass[1] ==
              tail_report.total.raw[escape],
          "page-class split covers every sampled escape");
    check(tail_report.escapeConsistentWith(
              ecc::BambooCodec::escapeProbability8BPlus(), 2.0),
          "sampled escape rate consistent with 2^-64 bound");
}

// ---------------------------------------------------------------------
// Section 4: interrupt/resume bit-identity (placement state rides the
// digest trail exactly like every other RunState field).
// ---------------------------------------------------------------------

void
runInterruptResumeCheck(const sched::ClusterConfig &config,
                        const std::vector<traces::Job> &jobs,
                        double stop_after_seconds,
                        double digest_every_seconds, Checks &check)
{
    sched::RunOptions options;
    options.digestEverySeconds = digest_every_seconds;

    sched::ClusterSimulator straight(config);
    const sched::RunOutcome full = straight.run(jobs, options);
    check(full.completed && !full.digests.digests.empty(),
          "straight-through run records a digest trail");

    std::vector<std::uint8_t> image;
    sched::RunOptions stopping = options;
    stopping.stopAfterSeconds = stop_after_seconds;
    stopping.snapshotSink =
        [&image](const std::vector<std::uint8_t> &state) {
            image = state;
        };
    sched::ClusterSimulator interrupted(config);
    const sched::RunOutcome partial = interrupted.run(jobs, stopping);
    check(!partial.completed && !image.empty(),
          "mid-campaign interrupt emits a snapshot");

    sched::ClusterSimulator resumed_sim(config);
    const util::Status restored =
        resumed_sim.restoreState(image, jobs);
    if (!restored.ok()) {
        std::fprintf(stderr,
                     "ablation_hetreliability: restore failed: %s\n",
                     restored.message().c_str());
        check(false, "mid-campaign snapshot restores");
        return;
    }
    check(true, "mid-campaign snapshot restores");
    const sched::RunOutcome resumed = resumed_sim.resume(options);
    check(resumed.completed, "resumed campaign runs to completion");
    check(sched::metricsIdentical(full.metrics, resumed.metrics),
          "resumed metrics bit-identical to straight-through");
    check(!snapshot::DigestTrail::firstDivergence(full.digests,
                                                  resumed.digests)
               .has_value(),
          "digest trail identical across interrupt/resume");
}

/** The deterministic self-checking campaign ctest gates on. */
int
runSmoke()
{
    Checks check;

    std::printf("HET-RELIABILITY ABLATION (smoke)\n\n");

    runNodeSection(40000, check);

    // Section 2: a one-week 64-node fleet slice under the drift
    // overlay, with the UE hazard pushed high enough that tolerant
    // strikes actually land inside the horizon.
    const double horizon_hours = 7.0 * 24.0;
    const fault::DriftScenarioConfig scenario =
        referenceScenario(horizon_hours, 8, 4, 1500.0, 12.0);
    const std::vector<fault::FaultEvent> overlay =
        fault::DriftChaosCampaign(scenario).clusterSchedule();

    traces::JobTraceModel trace_model;
    trace_model.numJobs = 1200;
    trace_model.spanSeconds = 7.0 * 86400.0;
    trace_model.systemNodes = 64;
    traces::GrizzlyTraceGenerator generator(trace_model, 42);
    const auto jobs = generator.generate();

    sched::SpeedupTable speedups;
    speedups.at800 = 1.13;
    speedups.at600 = 1.10;
    const double ue_per_hour = 5.0e-3;

    const auto leg = [&](bool hdmr, core::PlacementMode mode) {
        return legConfig(hdmr, mode, overlay, ue_per_hour,
                         trace_model.spanSeconds,
                         trace_model.systemNodes, speedups);
    };
    const sched::ClusterConfig dmr_config =
        leg(true, core::PlacementMode::kHeteroDmr);
    const sched::ClusterConfig hetrel_config =
        leg(true, core::PlacementMode::kHetReliability);

    check(sched::ClusterSimulator(dmr_config).configDigest() !=
              sched::ClusterSimulator(hetrel_config).configDigest(),
          "placement mode is fingerprinted into configDigest");

    const sched::ClusterMetrics conventional =
        sched::ClusterSimulator(
            leg(false, core::PlacementMode::kHeteroDmr))
            .run(jobs);
    const sched::ClusterMetrics dmr =
        sched::ClusterSimulator(dmr_config).run(jobs);
    const sched::ClusterMetrics hetrel =
        sched::ClusterSimulator(hetrel_config).run(jobs);
    const sched::ClusterMetrics hybrid =
        sched::ClusterSimulator(leg(true, core::PlacementMode::kHybrid))
            .run(jobs);

    std::printf("\n");
    const char *labels[4] = {"conventional", "hetero-dmr",
                             "het-reliability", "hybrid"};
    const sched::ClusterMetrics *legs[4] = {&conventional, &dmr,
                                            &hetrel, &hybrid};
    printFleetTable(conventional, labels, legs);
    std::printf("\n");

    runFleetChecks(dmr, hetrel, hybrid, check);
    runAllTolerantControl(hetrel_config, jobs, check);

    // Section 4: interrupt/resume on the leg carrying placement state.
    runInterruptResumeCheck(hetrel_config, jobs,
                            trace_model.spanSeconds / 2.0, 21600.0,
                            check);

    // Section 3: page-class containment on a small audit fleet.
    runSdcSection(referenceScenario(8.0, 2, 1, 0.0, 500.0), 1.0e8,
                  check);

    if (check.failures > 0) {
        std::fprintf(stderr,
                     "ablation_hetreliability: %d smoke check(s) "
                     "FAILED\n",
                     check.failures);
        return 1;
    }
    std::printf("\nablation_hetreliability: all smoke checks passed\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            if (argc != 2)
                util::fatal("ablation_hetreliability: --smoke takes "
                            "no other flags");
            return runSmoke();
        }
    }

    bench::SweepRunner runner("ablation_hetreliability", argc, argv);
    Checks check;

    std::printf("HET-RELIABILITY ABLATION: placement sweep\n\n");
    runNodeSection(40000, check);

    traces::JobTraceModel trace_model;
    traces::GrizzlyTraceGenerator generator(trace_model, 42);
    const auto jobs = generator.generate();

    const double horizon_hours = trace_model.spanSeconds / 3600.0;
    const fault::DriftScenarioConfig scenario =
        referenceScenario(horizon_hours, 64, 16, 100.0, 2.0);
    const std::vector<fault::FaultEvent> overlay =
        fault::DriftChaosCampaign(scenario).clusterSchedule();

    std::printf("\ntrace: %zu jobs / %u nodes / %.0f days under drift "
                "overlay (%zu events)\n\n",
                jobs.size(), trace_model.systemNodes,
                trace_model.spanSeconds / 86400.0, overlay.size());

    sched::SpeedupTable speedups;
    speedups.at800 = 1.13;
    speedups.at600 = 1.10;
    const double ue_per_hour = 2.0e-4;

    const auto config = [&](bool hdmr, core::PlacementMode mode) {
        return legConfig(hdmr, mode, overlay, ue_per_hour,
                         trace_model.spanSeconds,
                         trace_model.systemNodes, speedups);
    };
    const auto conventional = runner.leg(
        "conventional", config(false, core::PlacementMode::kHeteroDmr),
        jobs);
    const auto dmr = runner.leg(
        "hetero-dmr", config(true, core::PlacementMode::kHeteroDmr),
        jobs);
    const auto hetrel = runner.leg(
        "het-reliability",
        config(true, core::PlacementMode::kHetReliability), jobs);
    const auto hybrid = runner.leg(
        "hybrid", config(true, core::PlacementMode::kHybrid), jobs);
    sched::ClusterConfig control_config =
        config(true, core::PlacementMode::kHetReliability);
    control_config.criticality.tolerantMean = {1.0, 1.0, 1.0};
    control_config.criticality.tolerantJitter = 0.0;
    auto control =
        runner.leg("het-rel-all-tolerant", control_config, jobs);
    if (runner.stoppedEarly())
        return runner.finish();

    const char *labels[4] = {"conventional", "hetero-dmr",
                             "het-reliability", "hybrid"};
    const sched::ClusterMetrics *legs[4] = {&conventional, &dmr,
                                            &hetrel, &hybrid};
    printFleetTable(conventional, labels, legs);
    std::printf("\n");

    runFleetChecks(dmr, hetrel, hybrid, check);
    runAllTolerantControl(control_config, jobs, check, &control);

    runSdcSection(referenceScenario(24.0, 4, 1, 0.0, 250.0), 2.0e8,
                  check);

    const int rc = runner.finish();
    return rc != 0 ? rc : (check.failures > 0 ? 1 : 0);
}
