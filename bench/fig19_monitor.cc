/**
 * @file
 * Monitoring-overhead and adaptive-speedup evaluation of the
 * src/monitor subsystem (reported the way DAMON's eval.rst reports
 * its monitoring overhead and DAMOS gains).
 *
 * Three legs per workload shape, all on the Hetero-DMR node:
 *
 *  - baseline:  monitoring disabled (the static-threshold seed).
 *  - stat:      monitoring enabled, a stat-only scheme - pure
 *               observation, so the exec-time delta against baseline
 *               *is* the monitoring overhead the budget must bound.
 *  - adaptive:  monitoring plus the shipped phase-adaptive schemes
 *               (re-earn the deployment's static guard band while hot
 *               read-dominated phases hold, and defer discretionary
 *               write work out of those phases).
 *
 * Workload shapes: steady lulesh, and a phase-heavy lulesh whose
 * store share bursts periodically (checkpoint/output phases) - the
 * mix adaptive mode control exploits.
 *
 * Gates (--smoke, run by ctest as fig19_monitor_smoke):
 *   - stat-leg overhead <= 2 % on both workload shapes;
 *   - the sampler's self-reported overhead stays within its budget;
 *   - region count respects [1, maxRegions], splits/merges engage;
 *   - a tiny budget forces duty throttling (self-enforcement);
 *   - adaptive is no worse than baseline on the steady shape;
 *   - adaptive beats baseline on the phase-heavy shape;
 *   - the monitor digest trail is bit-identical across an in-run
 *     save/restore round trip, and a fresh sampler+engine restored
 *     from the image digests identically.
 *
 * Flags (unknown flags are fatal):
 *   --smoke                small deterministic run + the gates
 *   --telemetry-out=<dir>  export metrics (CSV + JSON) plus a
 *                          BENCH_fig19_monitor.json perf record
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "monitor/monitor.hh"
#include "monitor/scheme.hh"
#include "node/config.hh"
#include "node/node_system.hh"
#include "snapshot/serializer.hh"
#include "telemetry/bench_record.hh"
#include "telemetry/sinks.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace
{

using namespace hdmr;

enum class Leg
{
    kBaseline,
    kStat,
    kAdaptive,
};

const char *
legName(Leg leg)
{
    switch (leg) {
      case Leg::kBaseline: return "baseline";
      case Leg::kStat: return "stat";
      case Leg::kAdaptive: return "adaptive";
    }
    return "?";
}

/**
 * Monitoring parameters the bench runs with.  The aggregation
 * interval is deliberately shorter than a workload iteration
 * (~30 us) so some aggregation windows land inside the communication
 * phases - that is what the quiet-node scheme predicate keys on.
 */
monitor::MonitorConfig
benchMonitoring()
{
    monitor::MonitorConfig mon;
    mon.enabled = true;
    mon.samplingInterval = 2 * util::kTicksPerUs;
    mon.aggregationInterval = 5 * util::kTicksPerUs;
    mon.regionUpdateInterval = 15 * util::kTicksPerUs;
    mon.minRegions = 8;
    mon.maxRegions = 64;
    mon.overheadBudget = 0.02;
    mon.sampleCheckCost = 150;
    mon.initialDuty = 0.25;
    return mon;
}

node::NodeConfig
makeConfig(bool phase_heavy, Leg leg, bool smoke)
{
    node::NodeConfig config;
    config.hierarchy = node::HierarchyConfig::hierarchy1();
    config.workload = wl::benchmarkByName("lulesh");
    config.memOpsPerCore = smoke ? 24000 : 60000;
    // Hetero-DMR prefills an entirely clean LLC (a cleaning design
    // keeps no dirty backlog), and freshly dirtied lines need the LLC
    // sets to cycle before they reach eviction depth.  The long
    // functional warm-up carries the hierarchy to its dirty
    // steady-state so the measured window exercises the write path
    // the adaptive schemes act on.
    config.warmupOpsPerCore = 150000;
    config.memorySystem = node::MemorySystemKind::kHeteroDmr;
    config.seed = 7;
    // The deployment's static per-module thresholds hold two demotion
    // steps of guard band below the qualified 4000 MT/s (they must
    // stand for the worst phase ever profiled).  All three legs start
    // at the same banded operating point; only the adaptive leg's
    // earn_margin scheme can re-earn the band online.
    config.marginGuardBandMts = 400;

    if (phase_heavy) {
        // Periodic checkpoint/output behaviour: one fifth of each
        // period writes at 0.6 (the rest compensates so the long-run
        // store share stays at lulesh's 0.18), then every rank waits
        // out the checkpoint barrier.  The period is short enough
        // that every run sees several burst/wait cycles - each burst
        // is a forced write-mode entry the adaptive policy softens,
        // and the alternation stresses the monitor's phase tracking
        // (region ages reset, node-wide samples collapse and recover).
        config.workload.writeBurstPeriodOps = 7500;
        config.workload.writeBurstDuty = 0.2;
        config.workload.writeBurstFraction = 0.6;
        config.workload.checkpointWaitUs = 10.0;
    }

    if (leg != Leg::kBaseline) {
        config.monitoring = benchMonitoring();
        if (leg == Leg::kAdaptive) {
            util::checkOk(monitor::parseSchemeConfig(
                monitor::defaultPhaseAdaptiveSchemes(),
                &config.schemes));
        } else {
            monitor::Scheme stat;
            stat.name = "stat_all";
            stat.action = monitor::SchemeAction::kStat;
            config.schemes.schemes = {stat};
        }
    }
    return config;
}

/** Publishes per-leg metrics and totals for the perf record. */
struct Recorder
{
    telemetry::Registry registry;
    std::uint64_t simEvents = 0;
    double simSeconds = 0.0;

    node::NodeStats
    run(const node::NodeConfig &config, const std::string &metric)
    {
        const node::NodeStats stats = node::NodeSystem(config).run();
        simEvents += stats.memOps;
        simSeconds += stats.execSeconds;
        auto gauge = [&](const char *leaf, double value) {
            registry.gauge("fig19." + metric + "." + leaf).set(value);
        };
        gauge("exec_seconds", stats.execSeconds);
        gauge("write_mode_entries",
              static_cast<double>(stats.writeModeEntries));
        gauge("monitor_overhead_fraction",
              stats.monitorOverheadFraction);
        gauge("monitor_regions",
              static_cast<double>(stats.monitorRegions));
        gauge("scheme_fires", static_cast<double>(stats.schemeFires));
        return stats;
    }
};

/** One monitor digest-trail entry: sampler state x engine state. */
std::uint64_t
monitorDigest(node::NodeSystem &sys)
{
    return sys.regionSampler()->digest() ^
           (sys.schemeEngine()->digest() * 0x9e3779b97f4a7c15ULL);
}

/**
 * Run the adaptive phase-heavy node recording one digest per
 * aggregation.  When `roundtrip_at` is hit, the complete monitor
 * state (sampler + engine) is serialized and immediately restored
 * in-place - a correct round trip must not perturb a single
 * subsequent digest.  The serialized image is returned through
 * `image` for the fresh-object restore check.
 */
std::vector<std::uint64_t>
runDigestTrail(bool smoke, std::uint64_t roundtrip_at,
               std::vector<std::uint8_t> *image, bool *roundtrip_ok)
{
    node::NodeSystem sys(makeConfig(true, Leg::kAdaptive, smoke));
    monitor::RegionSampler *sampler = sys.regionSampler();
    monitor::SchemeEngine *engine = sys.schemeEngine();
    std::vector<std::uint64_t> trail;
    sampler->setAggregationObserver([&](std::uint64_t index) {
        if (index == roundtrip_at && roundtrip_at != 0) {
            snapshot::Serializer out;
            sampler->saveState(out);
            engine->saveState(out);
            if (image)
                *image = out.data();
            snapshot::Deserializer in(out.data());
            const bool ok = sampler->restoreState(in) &&
                            engine->restoreState(in) && in.ok() &&
                            in.remaining() == 0;
            if (roundtrip_ok)
                *roundtrip_ok = ok;
        }
        trail.push_back(monitorDigest(sys));
    });
    sys.run();
    return trail;
}

/**
 * The gates ctest's fig19_monitor_smoke enforces.  Returns the number
 * of failed checks (0 = pass) and prints a verdict per check.
 */
int
runChecks(bool smoke, Recorder &recorder)
{
    int failures = 0;
    const auto check = [&failures](bool ok, const char *what) {
        std::printf("check: %-52s %s\n", what, ok ? "PASS" : "FAIL");
        failures += ok ? 0 : 1;
    };

    // ---- The six legs. ----
    std::printf("%-14s %-10s %12s %12s %10s %8s\n", "workload", "leg",
                "exec(us)", "wm-entries", "overhead", "fires");
    node::NodeStats stats[2][3];
    for (int shape = 0; shape < 2; ++shape) {
        for (const Leg leg :
             {Leg::kBaseline, Leg::kStat, Leg::kAdaptive}) {
            const std::string metric =
                std::string(shape ? "phase_heavy" : "steady") + "." +
                legName(leg);
            const node::NodeStats s =
                recorder.run(makeConfig(shape == 1, leg, smoke), metric);
            stats[shape][static_cast<int>(leg)] = s;
            std::printf("%-14s %-10s %12.2f %12llu %9.3f%% %8llu\n",
                        shape ? "phase-heavy" : "steady", legName(leg),
                        s.execSeconds * 1.0e6,
                        static_cast<unsigned long long>(
                            s.writeModeEntries),
                        s.monitorOverheadFraction * 100.0,
                        static_cast<unsigned long long>(s.schemeFires));
        }
    }

    // ---- Overhead gates (the DAMON eval.rst measurement). ----
    for (int shape = 0; shape < 2; ++shape) {
        const double base = stats[shape][0].execSeconds;
        const double stat = stats[shape][1].execSeconds;
        check(stat <= base * 1.02,
              shape ? "phase-heavy: stat-leg overhead <= 2%"
                    : "steady: stat-leg overhead <= 2%");
        check(stats[shape][1].monitorOverheadFraction <=
                  benchMonitoring().overheadBudget,
              shape ? "phase-heavy: self-reported overhead in budget"
                    : "steady: self-reported overhead in budget");
    }

    // ---- Region-model sanity. ----
    const node::NodeStats &adaptive = stats[1][2];
    check(adaptive.monitorRegions >= 1 &&
              adaptive.monitorRegions <= benchMonitoring().maxRegions,
          "region count within [1, maxRegions]");
    check(adaptive.monitorSplits > 0 && adaptive.monitorMerges > 0,
          "region split and merge both engaged");
    check(adaptive.monitorAggregations > 0 &&
              adaptive.monitorSamples > 0,
          "sampler observed and aggregated accesses");
    check(adaptive.schemeHits > 0 && adaptive.schemeFires > 0,
          "schemes matched and fired");

    // ---- Budget self-enforcement: a near-zero budget must throttle
    // the duty window instead of blowing through. ----
    {
        node::NodeConfig starved = makeConfig(false, Leg::kStat, true);
        starved.monitoring.overheadBudget = 1.0e-4;
        const node::NodeStats s =
            recorder.run(starved, "steady.starved");
        check(s.monitorThrottles > 0,
              "starved budget engages the duty throttle");
        check(s.monitorOverheadFraction <= 0.005,
              "starved budget keeps overhead near zero");
    }

    // ---- Adaptive vs static. ----
    check(stats[0][2].execSeconds <= stats[0][0].execSeconds * 1.005,
          "steady: adaptive no worse than static (<= +0.5%)");
    check(stats[1][2].execSeconds < stats[1][0].execSeconds,
          "phase-heavy: adaptive beats static baseline");
    // One channel, two demotion steps of guard band: the earn_margin
    // scheme must walk the whole band back to the qualified rate.
    check(adaptive.marginPromotions == 2,
          "earn_margin re-earned the full guard band");

    // ---- Interrupt/resume bit-identity (digest trail). ----
    std::vector<std::uint8_t> image;
    bool roundtrip_ok = false;
    const std::vector<std::uint64_t> reference =
        runDigestTrail(true, 0, nullptr, nullptr);
    const std::vector<std::uint64_t> resumed =
        runDigestTrail(true, 10, &image, &roundtrip_ok);
    check(reference.size() > 12, "digest trail long enough to bite");
    check(roundtrip_ok, "mid-run monitor save/restore round-trips");
    check(reference == resumed,
          "digest trail bit-identical across round trip");

    // ---- Restore into fresh objects digests identically. ----
    {
        node::NodeSystem donor(makeConfig(true, Leg::kAdaptive, true));
        monitor::RegionSampler fresh_sampler(
            donor.regionSampler()->config());
        monitor::SchemeEngine fresh_engine(
            donor.schemeEngine()->config(), nullptr);
        snapshot::Deserializer in(image);
        const bool ok = fresh_sampler.restoreState(in) &&
                        fresh_engine.restoreState(in) && in.ok() &&
                        in.remaining() == 0;
        check(ok, "fresh sampler+engine restore from image");
        const std::uint64_t fresh =
            fresh_sampler.digest() ^
            (fresh_engine.digest() * 0x9e3779b97f4a7c15ULL);
        // The image was taken at aggregation 10 of the resumed run;
        // recompute what the digest was at that instant.
        std::uint64_t at_capture = 0;
        std::vector<std::uint8_t> image2;
        bool ok2 = false;
        const std::vector<std::uint64_t> again =
            runDigestTrail(true, 10, &image2, &ok2);
        at_capture = again.at(10);
        check(ok2 && image2 == image,
              "capture is deterministic across runs");
        check(fresh == at_capture,
              "fresh restore digests identically to capture");
    }

    return failures;
}

/** Export the registry and the perf-trajectory record. */
void
exportTelemetry(const std::string &dir, Recorder &recorder,
                const telemetry::WallTimer &timer)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        util::fatal("fig19_monitor: cannot create '%s': %s",
                    dir.c_str(), ec.message().c_str());

    std::string error;
    const std::string csv = dir + "/metrics.csv";
    if (!telemetry::writeMetricsCsv(recorder.registry, csv, &error))
        util::fatal("fig19_monitor: %s", error.c_str());
    const std::string json = dir + "/metrics.json";
    if (!telemetry::writeMetricsJson(recorder.registry, json, &error))
        util::fatal("fig19_monitor: %s", error.c_str());

    telemetry::BenchRecord record;
    record.bench = "fig19_monitor";
    record.gitSha = telemetry::currentGitSha();
    record.wallSeconds = timer.seconds();
    record.simSeconds = recorder.simSeconds;
    record.simEvents = recorder.simEvents;
    record.peakRssBytes = telemetry::currentPeakRssBytes();
    record.threads = 1;
    std::string bench_path;
    if (!telemetry::writeBenchRecord(dir, record, &error, &bench_path))
        util::fatal("fig19_monitor: %s", error.c_str());
    std::printf("\ntelemetry: %s, %s, %s\n", csv.c_str(), json.c_str(),
                bench_path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const telemetry::WallTimer timer;
    bool smoke = false;
    std::string telemetry_dir;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(arg, "--telemetry-out=", 16) == 0)
            telemetry_dir = arg + 16;
        else if (std::strcmp(arg, "--dump-schemes") == 0) {
            // The shipped default scheme text, verbatim; a ctest
            // diffs this against the checked-in copy under
            // schemas/schemes/ so the two can never drift apart.
            std::fputs(monitor::defaultPhaseAdaptiveSchemes(), stdout);
            return 0;
        } else
            util::fatal("fig19_monitor: unknown flag '%s'", arg);
    }

    std::printf("Fig. 19: bounded-overhead monitoring%s\n\n",
                smoke ? " (smoke)" : "");
    Recorder recorder;
    const int failures = runChecks(smoke, recorder);

    if (!telemetry_dir.empty())
        exportTelemetry(telemetry_dir, recorder, timer);

    if (failures > 0) {
        std::fprintf(stderr, "fig19_monitor: %d check(s) FAILED\n",
                     failures);
        return 1;
    }
    std::printf("\nfig19_monitor: all checks passed\n");
    return 0;
}
