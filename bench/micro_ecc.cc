/**
 * @file
 * Microbenchmarks: Bamboo ECC encode / detect-only decode / full
 * correction throughput (google-benchmark).
 */

#include <benchmark/benchmark.h>

#include "ecc/bamboo.hh"
#include "ecc/error_inject.hh"
#include "util/rng.hh"

namespace
{

using namespace hdmr::ecc;

Block
randomBlock(hdmr::util::Rng &rng)
{
    Block block;
    for (auto &byte : block)
        byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    return block;
}

void
BM_BambooEncode(benchmark::State &state)
{
    BambooCodec codec;
    hdmr::util::Rng rng(1);
    const Block data = randomBlock(rng);
    std::uint64_t address = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec.encode(data, address++));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BambooEncode);

void
BM_BambooDetectClean(benchmark::State &state)
{
    BambooCodec codec;
    hdmr::util::Rng rng(2);
    const CodedBlock coded = codec.encode(randomBlock(rng), 0x42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec.decodeDetectOnly(coded, 0x42));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BambooDetectClean);

void
BM_BambooCorrectErrors(benchmark::State &state)
{
    BambooCodec codec;
    hdmr::util::Rng rng(3);
    const auto width = static_cast<unsigned>(state.range(0));
    const Block data = randomBlock(rng);
    const CodedBlock clean = codec.encode(data, 0x77);
    for (auto _ : state) {
        state.PauseTiming();
        CodedBlock bad = clean;
        corruptBytes(bad, width, rng);
        state.ResumeTiming();
        benchmark::DoNotOptimize(codec.decodeCorrecting(bad, 0x77));
    }
}
BENCHMARK(BM_BambooCorrectErrors)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
