/**
 * @file
 * Fig. 2: memory frequency margins across the 119-module study fleet,
 * measured by the simulated test machine (200 MT/s BIOS steps,
 * 4000 MT/s platform cap).
 */

#include <cstdio>

#include "margin/population.hh"
#include "margin/study.hh"
#include "margin/test_machine.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace hdmr;
    using namespace hdmr::margin;

    const auto fleet = makeStudyFleet(2021);
    TestMachine machine(TestMachineConfig{}, 7);
    const auto measurements = machine.characterizeFleet(fleet);

    std::printf("FIG. 2: Memory frequency margins across 119 server "
                "modules\n\n");

    // (a) distribution of absolute margins.
    util::Histogram histogram(0.0, 1400.0, 7);
    for (const auto &m : measurements)
        histogram.add(static_cast<double>(m.marginMts()));
    std::printf("(a) margin distribution (MT/s, all brands):\n%s\n",
                histogram.toAscii(40).c_str());

    // (b) per-brand summary, margins normalized to spec rate.
    const auto groups = groupMargins(
        fleet, measurements,
        [](const MemoryModule &m) { return toString(m.spec.brand); });
    util::Table table({"brand", "modules", "mean margin (MT/s)",
                       "mean margin (%)", "stdev (MT/s)"});
    for (const auto &g : groups) {
        table.row()
            .cell(g.label)
            .cell(static_cast<long long>(g.count))
            .cell(g.meanMarginMts, 0)
            .cell(util::formatPercent(g.meanMarginFraction))
            .cell(g.stdevMts, 0);
    }
    table.print();

    const auto abc = aggregateMargins(
        fleet, measurements,
        [](const MemoryModule &m) { return m.spec.brand != Brand::kD; },
        "A-C");
    std::printf("\nBrands A-C: mean margin %.0f MT/s = %s of spec "
                "(paper: 770 MT/s = 27%%)\n",
                abc.meanMarginMts,
                util::formatPercent(abc.meanMarginFraction).c_str());
    return 0;
}
