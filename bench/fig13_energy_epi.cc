/**
 * @file
 * Fig. 13: system-level (CPU+DRAM) energy per instruction normalized
 * to the Commercial Baseline, weighted like Fig. 12.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "eval_common.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace hdmr;
    using namespace hdmr::bench;

    EvalHarness harness("fig13_energy_epi", argc, argv);
    const EvalSizing sizing;
    const auto grid =
        EvalGrid::runOrLoad("results/eval_results.csv",
                            evaluationGrid(sizing), harness.threads());

    const UsageWeights usage;
    const MarginWeights margins;

    std::printf("FIG. 13: Energy per instruction normalized to "
                "Commercial Baseline\n\n");

    util::Table table({"hierarchy", "FMR", "Hetero-DMR@0.8",
                       "Hetero-DMR@0.6", "Hetero-DMR+FMR@0.8"});

    double hdmr_weighted_sum = 0.0;
    for (const auto &hierarchy : {"Hierarchy1", "Hierarchy2"}) {
        auto normalized_epi = [&](const char *system, unsigned margin,
                                  unsigned usage_class) {
            std::map<std::string, std::vector<double>> suites;
            for (const auto &w : wl::benchmarkCatalog()) {
                const double base =
                    grid.lookup(w.name, hierarchy,
                                "Commercial Baseline", 800, 1)
                        .epiNj;
                const double epi =
                    grid.lookup(w.name, hierarchy, system, margin,
                                usage_class)
                        .epiNj;
                suites[w.suite].push_back(epi / base);
            }
            return suiteAverage(suites);
        };

        const double fmr = normalized_epi("FMR", 800, 1);
        const double h8 = normalized_epi("Hetero-DMR", 800, 1);
        const double h6 = normalized_epi("Hetero-DMR", 600, 1);
        const double hf8 = normalized_epi("Hetero-DMR+FMR", 800, 0);
        table.row()
            .cell(hierarchy)
            .cell(util::formatPercent(fmr, 0))
            .cell(util::formatPercent(h8, 0))
            .cell(util::formatPercent(h6, 0))
            .cell(util::formatPercent(hf8, 0));

        // Usage/margin weighting: EPI reverts to 1.0 where Hetero-DMR
        // is inactive (>=50 % usage or no margin).
        const double active = usage.under25 + usage.under25to50;
        const double weighted =
            margins.at800 * (active * h8 + usage.over50 * 1.0) +
            margins.at600 * (active * h6 + usage.over50 * 1.0) +
            margins.at0 * 1.0;
        hdmr_weighted_sum += weighted;
    }
    table.print();

    std::printf("\nHetero-DMR weighted average EPI vs baseline: "
                "%+.0f%% (paper: -6%%, despite doubled write "
                "energy)\n",
                (hdmr_weighted_sum / 2.0 - 1.0) * 100.0);
    return harness.finish({&grid});
}
