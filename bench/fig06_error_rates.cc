/**
 * @file
 * Fig. 6: memory error rate when exploiting each module's margins, at
 * 23 degC and 45 degC ambient, frequency-only and frequency+latency,
 * plus the fully-populated-system experiment.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "margin/error_model.hh"
#include "margin/population.hh"
#include "margin/test_machine.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::margin;

struct TestCondition
{
    const char *label;
    double ambientC;
    bool latencyMargins;
};

struct Summary
{
    double meanErrorsPerHour = 0.0;
    double ueFraction = 0.0;
    unsigned modulesWithErrors = 0;
    unsigned failedToBoot = 0;
    unsigned tested = 0;
};

Summary
characterize(const std::vector<MemoryModule> &fleet,
             const TestCondition &condition, std::uint64_t seed)
{
    TestMachineConfig config;
    config.ambientC = condition.ambientC;
    config.exploitLatencyMargins = condition.latencyMargins;
    TestMachine machine(config, seed);

    Summary summary;
    util::RunningStats errors;
    std::uint64_t ce = 0, ue = 0;
    for (const auto &module : fleet) {
        if (module.spec.brand == Brand::kD)
            continue;
        ++summary.tested;
        const auto result = machine.stressAtMarginEdge(module);
        if (!result || !result->booted) {
            ++summary.failedToBoot;
            continue;
        }
        errors.add(static_cast<double>(result->totalErrors()));
        ce += result->correctedErrors;
        ue += result->uncorrectedErrors;
        summary.modulesWithErrors += result->totalErrors() > 0;
    }
    summary.meanErrorsPerHour = errors.count() ? errors.mean() : 0.0;
    summary.ueFraction =
        ce + ue ? static_cast<double>(ue) /
                      static_cast<double>(ce + ue)
                : 0.0;
    return summary;
}

} // namespace

int
main()
{
    const auto fleet = makeStudyFleet(2021);

    std::printf("FIG. 6: Error rate at the margin edge (one-hour "
                "stress test per module, brands A-C)\n\n");

    const TestCondition conditions[] = {
        {"23C, freq margin", 23.0, false},
        {"23C, freq+lat margins", 23.0, true},
        {"45C, freq margin", 45.0, false},
        {"45C, freq+lat margins", 45.0, true},
    };

    util::Table table({"condition", "modules w/ errors", "boot fails",
                       "mean errors/hr", "UE fraction"});
    double rate23 = 0.0, rate45 = 0.0;
    double rate23_lat = 0.0, rate45_lat = 0.0;
    for (const auto &condition : conditions) {
        const Summary s = characterize(fleet, condition, 99);
        table.row()
            .cell(condition.label)
            .cell(static_cast<long long>(s.modulesWithErrors))
            .cell(static_cast<long long>(s.failedToBoot))
            .cell(s.meanErrorsPerHour, 1)
            .cell(s.ueFraction, 2);
        if (condition.ambientC < 40 && !condition.latencyMargins)
            rate23 = s.meanErrorsPerHour;
        if (condition.ambientC >= 40 && !condition.latencyMargins)
            rate45 = s.meanErrorsPerHour;
        if (condition.ambientC < 40 && condition.latencyMargins)
            rate23_lat = s.meanErrorsPerHour;
        if (condition.ambientC >= 40 && condition.latencyMargins)
            rate45_lat = s.meanErrorsPerHour;
    }
    table.print();

    std::printf("\n45C / 23C error-rate ratio, freq margin: %.1fx "
                "(paper: ~4x)\n",
                rate45 / rate23);
    std::printf("45C / 23C error-rate ratio, freq+lat: %.1fx "
                "(paper: ~2x)\n",
                rate45_lat / rate23_lat);

    // Full-system experiment: all slots populated halves per-module
    // access intensity.
    const ErrorRateModel model;
    util::RunningStats solo_rate, shared_rate;
    for (const auto &module : fleet) {
        if (module.spec.brand == Brand::kD ||
            module.spec.specRateMts != 3200) {
            continue;
        }
        OperatingPoint solo, shared;
        solo.dataRateMts = shared.dataRateMts =
            module.maxStableRateMts + 200;
        solo.latencyMarginsExploited =
            shared.latencyMarginsExploited = true;
        shared.accessIntensity = 0.5;
        solo_rate.add(model.errorsPerHour(module, solo));
        shared_rate.add(model.errorsPerHour(module, shared));
    }
    std::printf("\nFull-system (2 modules/channel) per-module error "
                "rate vs single-module: %.2fx (paper: ~0.5x)\n",
                shared_rate.mean() / solo_rate.mean());
    return 0;
}
