#!/usr/bin/env python3
"""Deterministically damage a snapshot file, in place.

Companion to the last-good-generation recovery path: the fallback
ctest (and anyone reproducing a corruption report by hand) uses this
to turn a healthy snapshot into each of the failure modes the reader
must survive - a flipped bit (CRC mismatch), a truncated tail
(short image), or a clobbered magic (not a snapshot at all).

Usage:
    corrupt_snapshot.py flip     PATH [OFFSET]   # XOR one byte, 0x7f
    corrupt_snapshot.py truncate PATH [NBYTES]   # keep first NBYTES
    corrupt_snapshot.py magic    PATH            # overwrite the magic

Defaults: OFFSET is the middle of the file (inside the payload for
any non-trivial snapshot); NBYTES is half the file.  Every mode is
deterministic so a test that corrupts a snapshot always produces the
same damaged bytes.
"""

import sys


def fail(message: str) -> "NoReturn":  # noqa: F821 (py3.8 compat)
    print(f"corrupt_snapshot: {message}", file=sys.stderr)
    sys.exit(2)


def main(argv):
    if len(argv) < 3:
        fail(f"usage: {argv[0]} flip|truncate|magic PATH [ARG]")
    mode, path = argv[1], argv[2]
    arg = argv[3] if len(argv) > 3 else None

    try:
        with open(path, "rb") as f:
            data = bytearray(f.read())
    except OSError as e:
        fail(str(e))
    if not data:
        fail(f"'{path}' is empty; nothing to corrupt")

    if mode == "flip":
        offset = int(arg) if arg is not None else len(data) // 2
        if not 0 <= offset < len(data):
            fail(f"offset {offset} outside [0, {len(data)})")
        data[offset] ^= 0x7F
        print(f"flipped byte {offset} of {len(data)} in '{path}'")
    elif mode == "truncate":
        keep = int(arg) if arg is not None else len(data) // 2
        if not 0 <= keep < len(data):
            fail(f"cannot truncate {len(data)} bytes to {keep}")
        data = data[:keep]
        print(f"truncated '{path}' to {keep} bytes")
    elif mode == "magic":
        if len(data) < 8:
            fail(f"'{path}' is shorter than the 8-byte magic")
        data[0:8] = b"NOTASNAP"
        print(f"clobbered the magic of '{path}'")
    else:
        fail(f"unknown mode '{mode}' (flip|truncate|magic)")

    with open(path, "wb") as f:
        f.write(bytes(data))


if __name__ == "__main__":
    main(sys.argv)
