#!/usr/bin/env python3
"""Validate BENCH_<name>.json records against the checked-in schema.

Standard library only: instead of depending on `jsonschema`, this
interprets the (deliberately small) subset of JSON Schema that
schemas/bench_record.schema.json uses - type, const, required,
additionalProperties, minimum, minLength, pattern.  CI runs it on every
record a bench emits; a validation failure fails the job.

Usage: validate_bench_record.py [--schema PATH] RECORD.json [...]
"""

import argparse
import json
import re
import sys
from pathlib import Path

DEFAULT_SCHEMA = Path(__file__).resolve().parent.parent / \
    "schemas" / "bench_record.schema.json"


def check_type(value, expected):
    """JSON Schema type check; note bool is not an integer/number."""
    if expected == "object":
        return isinstance(value, dict)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and \
            not isinstance(value, bool)
    raise ValueError(f"schema uses unsupported type '{expected}'")


def validate_value(value, schema, path, errors):
    if "const" in schema:
        if value != schema["const"]:
            errors.append(f"{path}: expected {schema['const']!r}, "
                          f"got {value!r}")
        return
    expected = schema.get("type")
    if expected is not None and not check_type(value, expected):
        errors.append(f"{path}: expected {expected}, "
                      f"got {type(value).__name__} ({value!r})")
        return
    if "minimum" in schema and value < schema["minimum"]:
        errors.append(f"{path}: {value!r} below minimum "
                      f"{schema['minimum']}")
    if "minLength" in schema and len(value) < schema["minLength"]:
        errors.append(f"{path}: shorter than {schema['minLength']}")
    if "pattern" in schema and not re.search(schema["pattern"], value):
        errors.append(f"{path}: {value!r} does not match "
                      f"{schema['pattern']!r}")
    if expected == "object":
        validate_object(value, schema, path, errors)


def validate_object(value, schema, path, errors):
    for key in schema.get("required", []):
        if key not in value:
            errors.append(f"{path}: missing required field '{key}'")
    properties = schema.get("properties", {})
    if schema.get("additionalProperties", True) is False:
        for key in value:
            if key not in properties:
                errors.append(f"{path}: unexpected field '{key}'")
    for key, subschema in properties.items():
        if key in value:
            validate_value(value[key], subschema, f"{path}.{key}",
                           errors)


def validate_record(record_path, schema):
    errors = []
    try:
        with open(record_path, encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{record_path}: unreadable or invalid JSON: {exc}"]
    validate_value(record, schema, "$", errors)
    return [f"{record_path}: {e}" for e in errors]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", type=Path, default=DEFAULT_SCHEMA)
    parser.add_argument("records", nargs="+", type=Path,
                        metavar="RECORD.json")
    args = parser.parse_args()

    with open(args.schema, encoding="utf-8") as handle:
        schema = json.load(handle)

    failures = 0
    for record_path in args.records:
        errors = validate_record(record_path, schema)
        if errors:
            failures += 1
            for error in errors:
                print(f"FAIL {error}", file=sys.stderr)
        else:
            print(f"OK   {record_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
