/**
 * @file
 * Tests for workloads, the core model, and the assembled node
 * simulator: stream properties, determinism, and the headline
 * performance orderings the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <stdexcept>
#include <vector>

#include "node/config.hh"
#include "node/energy.hh"
#include "node/node_system.hh"
#include "node/runner.hh"
#include "workloads/hpc_workloads.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::node;

// --------------------------------------------------------------------
// Workload streams
// --------------------------------------------------------------------

TEST(Workloads, CatalogCoversSixSuites)
{
    std::map<std::string, int> suites;
    for (const auto &w : wl::benchmarkCatalog())
        ++suites[w.suite];
    EXPECT_EQ(suites.size(), 6u);
    for (const auto &name : wl::suiteNames())
        EXPECT_GT(suites[name], 0) << name;
    EXPECT_EQ(wl::benchmarksInSuite("CORAL2").size(), 4u);
    EXPECT_EQ(wl::benchmarkByName("linpack").suite, "Linpack");
}

TEST(Workloads, StreamLengthAndMix)
{
    const auto &params = wl::benchmarkByName("hpcg");
    wl::SyntheticHpcStream stream(params, 0, 20000, 7);
    wl::Op op;
    std::uint64_t loads = 0, stores = 0, comm = 0;
    while (stream.next(op)) {
        loads += op.kind == wl::Op::Kind::kLoad;
        stores += op.kind == wl::Op::Kind::kStore;
        comm += op.kind == wl::Op::Kind::kComm;
    }
    EXPECT_EQ(loads + stores, 20000u);
    EXPECT_NEAR(static_cast<double>(stores) / 20000.0,
                params.writeFraction, 0.02);
    EXPECT_GE(comm, 3u); // periodic MPI phases
}

TEST(Workloads, RanksHaveDisjointAddressSpaces)
{
    const auto &params = wl::benchmarkByName("lulesh");
    wl::SyntheticHpcStream a(params, 0, 1000, 7);
    wl::SyntheticHpcStream b(params, 1, 1000, 7);
    wl::Op op;
    std::uint64_t max_a = 0, min_b = ~0ull;
    while (a.next(op))
        if (op.kind == wl::Op::Kind::kLoad ||
            op.kind == wl::Op::Kind::kStore)
            max_a = std::max(max_a, op.address);
    while (b.next(op))
        if (op.kind == wl::Op::Kind::kLoad ||
            op.kind == wl::Op::Kind::kStore)
            min_b = std::min(min_b, op.address);
    EXPECT_LT(max_a, min_b);
}

TEST(Workloads, DeterministicForSeed)
{
    const auto &params = wl::benchmarkByName("bfs");
    wl::SyntheticHpcStream a(params, 3, 500, 42);
    wl::SyntheticHpcStream b(params, 3, 500, 42);
    wl::Op opa, opb;
    while (true) {
        const bool more_a = a.next(opa);
        const bool more_b = b.next(opb);
        ASSERT_EQ(more_a, more_b);
        if (!more_a)
            break;
        EXPECT_EQ(opa.address, opb.address);
        EXPECT_EQ(static_cast<int>(opa.kind),
                  static_cast<int>(opb.kind));
    }
}

// --------------------------------------------------------------------
// Energy model
// --------------------------------------------------------------------

TEST(Energy, EpiDecomposesAndScales)
{
    EnergyInputs inputs;
    inputs.execSeconds = 1.0e-3;
    inputs.instructions = 1000000;
    inputs.cores = 8;
    inputs.totalRanks = 4;
    inputs.activates = 10000;
    inputs.readBursts = 50000;
    inputs.writeRankBursts = 10000;
    inputs.refreshes = 500;
    const auto base = computeEnergy(inputs);
    EXPECT_GT(base.totalJ(), 0.0);
    EXPECT_NEAR(base.epiNj,
                base.totalJ() * 1.0e9 / 1000000.0, 1e-9);

    // Self-refresh time reduces background energy.
    auto parked = inputs;
    parked.rankSelfRefreshSeconds = 2.0e-3; // 2 ranks x 1 ms
    EXPECT_LT(computeEnergy(parked).dramBackgroundJ,
              base.dramBackgroundJ);

    // Broadcast writes cost rank-level energy.
    auto broadcast = inputs;
    broadcast.writeRankBursts *= 2;
    EXPECT_GT(computeEnergy(broadcast).dramDynamicJ, base.dramDynamicJ);
}

// --------------------------------------------------------------------
// Node system (smaller runs: these drive the full simulator)
// --------------------------------------------------------------------

NodeConfig
smallConfig(MemorySystemKind kind, const char *bench = "hpcg")
{
    NodeConfig config;
    config.hierarchy = HierarchyConfig::hierarchy1();
    config.workload = wl::benchmarkByName(bench);
    config.memorySystem = kind;
    config.memOpsPerCore = 12000;
    config.warmupOpsPerCore = 6000;
    return config;
}

TEST(NodeSystem, BaselineRunsToCompletion)
{
    NodeSystem system(smallConfig(MemorySystemKind::kCommercialBaseline));
    const auto stats = system.run();
    EXPECT_GT(stats.execSeconds, 0.0);
    EXPECT_GT(stats.instructions, 100000u);
    EXPECT_GT(stats.dramReads, 1000u);
    EXPECT_GT(stats.busUtilization, 0.05);
    EXPECT_LT(stats.busUtilization, 1.0);
}

TEST(NodeSystem, DeterministicForSeed)
{
    const auto a =
        NodeSystem(smallConfig(MemorySystemKind::kCommercialBaseline))
            .run();
    const auto b =
        NodeSystem(smallConfig(MemorySystemKind::kCommercialBaseline))
            .run();
    EXPECT_DOUBLE_EQ(a.execSeconds, b.execSeconds);
    EXPECT_EQ(a.dramReads, b.dramReads);
}

TEST(NodeSystem, FreqLatMarginsBeatBaseline)
{
    const auto base =
        NodeSystem(smallConfig(MemorySystemKind::kCommercialBaseline))
            .run();
    const auto fast =
        NodeSystem(smallConfig(MemorySystemKind::kExploitFreqLat)).run();
    EXPECT_GT(base.execSeconds / fast.execSeconds, 1.05);
}

TEST(NodeSystem, FrequencyMarginDominatesLatencyMargin)
{
    // The paper's central characterization finding (Fig. 5): on the
    // memory-bound Hierarchy 1, the frequency component of the margin
    // buys more than the latency component.
    const auto base =
        NodeSystem(smallConfig(MemorySystemKind::kCommercialBaseline))
            .run();
    const auto freq =
        NodeSystem(smallConfig(MemorySystemKind::kExploitFrequency))
            .run();
    const auto lat =
        NodeSystem(smallConfig(MemorySystemKind::kExploitLatency)).run();
    EXPECT_GT(base.execSeconds / freq.execSeconds,
              base.execSeconds / lat.execSeconds);
}

TEST(NodeSystem, HeteroDmrBetweenBaselineAndFreqLat)
{
    const auto base =
        NodeSystem(smallConfig(MemorySystemKind::kCommercialBaseline))
            .run();
    const auto hdmr =
        NodeSystem(smallConfig(MemorySystemKind::kHeteroDmr)).run();
    const auto fast =
        NodeSystem(smallConfig(MemorySystemKind::kExploitFreqLat)).run();
    // Rigorous reliability costs a little performance vs raw margin
    // exploitation (Section IV-B), but Hetero-DMR must not collapse.
    EXPECT_GT(base.execSeconds / hdmr.execSeconds, 0.95);
    EXPECT_LT(hdmr.execSeconds, base.execSeconds * 1.08);
    EXPECT_GE(fast.execSeconds, hdmr.execSeconds * 0.7);
}

TEST(NodeSystem, HeteroDmrFallsBackAtHighUsage)
{
    auto config = smallConfig(MemorySystemKind::kHeteroDmr);
    config.usage = core::MemoryUsage::kOver50;
    EXPECT_EQ(config.effectiveReplication(),
              core::ReplicationMode::kNone);
    const auto stats = NodeSystem(config).run();
    const auto base =
        NodeSystem(smallConfig(MemorySystemKind::kCommercialBaseline))
            .run();
    // Same behaviour as the baseline within noise.
    EXPECT_NEAR(stats.execSeconds / base.execSeconds, 1.0, 0.05);
}

TEST(NodeSystem, HeteroDmrWritesBroadcast)
{
    const auto hdmr =
        NodeSystem(smallConfig(MemorySystemKind::kHeteroDmr)).run();
    EXPECT_EQ(hdmr.dramWriteRankOps, 2 * hdmr.dramWrites);
    const auto base =
        NodeSystem(smallConfig(MemorySystemKind::kCommercialBaseline))
            .run();
    EXPECT_EQ(base.dramWriteRankOps, base.dramWrites);
}

TEST(NodeSystem, ErrorInjectionDrivesCorrections)
{
    auto config = smallConfig(MemorySystemKind::kHeteroDmr);
    config.readErrorProbability = 1.0e-3;
    const auto stats = NodeSystem(config).run();
    EXPECT_GT(stats.corrections, 10u);
}

TEST(NodeSystem, Hierarchy2RunsAllSystems)
{
    for (const auto kind : {MemorySystemKind::kCommercialBaseline,
                            MemorySystemKind::kFmr,
                            MemorySystemKind::kHeteroDmr,
                            MemorySystemKind::kHeteroDmrFmr}) {
        auto config = smallConfig(kind, "linpack");
        config.hierarchy = HierarchyConfig::hierarchy2();
        if (kind == MemorySystemKind::kHeteroDmrFmr)
            config.usage = core::MemoryUsage::kUnder25;
        const auto stats = NodeSystem(config).run();
        EXPECT_GT(stats.execSeconds, 0.0) << toString(kind);
    }
}

// --------------------------------------------------------------------
// Parallel grid runner
// --------------------------------------------------------------------

TEST(RunGrid, ResultsInConfigOrderRegardlessOfThreadCount)
{
    // A grid whose entries are distinguishable by their stats, so any
    // ordering mixup between workers is visible.
    std::vector<NodeConfig> configs;
    for (const char *bench : {"hpcg", "linpack", "amg", "lulesh"}) {
        configs.push_back(
            smallConfig(MemorySystemKind::kCommercialBaseline, bench));
        configs.push_back(
            smallConfig(MemorySystemKind::kExploitFreqLat, bench));
    }

    const auto serial = runGrid(configs, 1);
    const auto parallel = runGrid(configs, 4);
    ASSERT_EQ(serial.size(), configs.size());
    ASSERT_EQ(parallel.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial[i].execSeconds, parallel[i].execSeconds)
            << "config " << i;
        EXPECT_EQ(serial[i].instructions, parallel[i].instructions)
            << "config " << i;
        EXPECT_EQ(serial[i].dramReads, parallel[i].dramReads)
            << "config " << i;
    }
}

TEST(RunGrid, EmptyGridReturnsEmpty)
{
    EXPECT_TRUE(runGrid({}, 1).empty());
    EXPECT_TRUE(runGrid({}, 4).empty());
}

TEST(RunGrid, WorkerExceptionPropagatesToCaller)
{
    // Inline (threads = 1) and pooled paths must both rethrow instead
    // of std::terminate-ing the process.
    const auto boom = [](std::size_t index) {
        if (index == 3)
            throw std::runtime_error("config 3 exploded");
    };
    EXPECT_THROW(detail::parallelFor(8, 1, boom), std::runtime_error);
    EXPECT_THROW(detail::parallelFor(8, 4, boom), std::runtime_error);

    try {
        detail::parallelFor(8, 4, boom);
        FAIL() << "parallelFor swallowed the exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "config 3 exploded");
    }
}

TEST(RunGrid, FailureStopsRemainingWork)
{
    // After the failing index, workers should stop picking up new
    // indices: with one thread the execution is sequential, so nothing
    // past the throwing index may run.
    std::atomic<std::size_t> ran{0};
    const auto body = [&ran](std::size_t index) {
        if (index == 2)
            throw std::runtime_error("stop");
        ran.fetch_add(1);
    };
    EXPECT_THROW(node::detail::parallelFor(100, 1, body),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 2u);
}

} // namespace
