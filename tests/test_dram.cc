/**
 * @file
 * Tests for the DRAM subsystem: timing derivation (Table II),
 * address mapping, controller scheduling invariants (ordering,
 * row-hit preference, write drains, refresh, self-refresh, broadcast
 * writes, mode transitions, error injection).
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <vector>

#include "dram/address_map.hh"
#include "dram/controller.hh"
#include "dram/timing.hh"
#include "util/rng.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::dram;
using util::Tick;

// --------------------------------------------------------------------
// Timing
// --------------------------------------------------------------------

TEST(Timing, TableTwoSettings)
{
    const auto spec = MemorySetting::manufacturerSpec();
    EXPECT_EQ(spec.dataRateMts, 3200u);
    EXPECT_DOUBLE_EQ(spec.trcdNs, 13.75);
    EXPECT_DOUBLE_EQ(spec.trefiUs, 7.8);

    const auto lat = MemorySetting::exploitLatencyMargin();
    EXPECT_EQ(lat.dataRateMts, 3200u);
    EXPECT_DOUBLE_EQ(lat.trcdNs, 11.5);
    EXPECT_DOUBLE_EQ(lat.trpNs, 11.0);
    EXPECT_DOUBLE_EQ(lat.trasNs, 29.5);
    EXPECT_DOUBLE_EQ(lat.trefiUs, 15.0);

    const auto freq = MemorySetting::exploitFrequencyMargin();
    EXPECT_EQ(freq.dataRateMts, 4000u);
    EXPECT_DOUBLE_EQ(freq.trcdNs, 13.75);

    const auto both = MemorySetting::exploitFreqLatMargins();
    EXPECT_EQ(both.dataRateMts, 4000u);
    EXPECT_DOUBLE_EQ(both.trcdNs, 11.5);
}

TEST(Timing, DerivedPackageScalesWithRate)
{
    const auto slow =
        DramTiming::fromSetting(MemorySetting::manufacturerSpec(3200));
    const auto fast = DramTiming::fromSetting(
        MemorySetting::exploitFrequencyMargin(4000));
    EXPECT_EQ(slow.tCK, 625u);
    EXPECT_EQ(fast.tCK, 500u);
    EXPECT_EQ(slow.tBURST, 2500u);
    EXPECT_EQ(fast.tBURST, 2000u);
    // ns-specified latencies do not change with the data rate.
    EXPECT_EQ(slow.tRCD, fast.tRCD);
    EXPECT_EQ(slow.tCAS, fast.tCAS);
}

TEST(Timing, LatencyMarginDoesNotTouchCas)
{
    const auto spec =
        DramTiming::fromSetting(MemorySetting::manufacturerSpec());
    const auto lat =
        DramTiming::fromSetting(MemorySetting::exploitLatencyMargin());
    EXPECT_EQ(spec.tCAS, lat.tCAS); // CL is not in Table II
    EXPECT_LT(lat.tRCD, spec.tRCD);
    EXPECT_LT(lat.tRP, spec.tRP);
    EXPECT_GT(lat.tREFI, spec.tREFI);
}

// --------------------------------------------------------------------
// Address map
// --------------------------------------------------------------------

TEST(AddressMap, FieldsWithinBounds)
{
    AddressMap map(AddressMapConfig{4, 4, 16, 128, 64});
    util::Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const auto coord = map.decode(rng.next() % (1ull << 36));
        EXPECT_LT(coord.channel, 4u);
        EXPECT_LT(coord.rank, 4u);
        EXPECT_LT(coord.bank, 16u);
        EXPECT_LT(coord.column, 128u);
    }
}

TEST(AddressMap, ConsecutiveLinesShareRow)
{
    AddressMap map(AddressMapConfig{1, 4, 16, 128, 64});
    const auto a = map.decode(0x100000);
    const auto b = map.decode(0x100040);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.column + 1, b.column);
}

TEST(AddressMap, XorFoldSpreadsRowsAcrossBanks)
{
    AddressMap map(AddressMapConfig{1, 1, 16, 128, 64});
    // Same column/rank, consecutive rows: banks must differ.
    std::set<unsigned> banks;
    const std::uint64_t row_stride = 64ull * 128 * 16; // one row step
    for (int r = 0; r < 16; ++r)
        banks.insert(map.decode(r * row_stride).bank);
    EXPECT_GT(banks.size(), 8u);
}

// --------------------------------------------------------------------
// Controller
// --------------------------------------------------------------------

ControllerConfig
specConfig()
{
    ControllerConfig config;
    config.readModeTiming =
        DramTiming::fromSetting(MemorySetting::manufacturerSpec());
    config.writeModeTiming = config.readModeTiming;
    return config;
}

TEST(Controller, SingleReadCompletesWithSensibleLatency)
{
    sim::EventQueue events;
    MemoryController controller(events, specConfig());
    Tick done = 0;
    MemRequest request;
    request.address = 0x4000;
    request.onComplete = [&](Tick t) { done = t; };
    controller.enqueueRead(std::move(request));
    events.run();
    // Closed-bank read: ~tRCD + tCAS + tBURST = 30 ns.
    EXPECT_GE(done, util::nsToTicks(25.0));
    EXPECT_LE(done, util::nsToTicks(60.0));
    EXPECT_EQ(controller.stats().reads, 1u);
}

TEST(Controller, RowHitsFasterThanConflicts)
{
    // Stream of same-row reads vs same-bank different-row reads.
    auto run = [](bool same_row) {
        sim::EventQueue events;
        MemoryController controller(events, specConfig());
        const std::uint64_t row_stride = 64ull * 128 * 16 * 4;
        Tick last = 0;
        for (int i = 0; i < 64; ++i) {
            MemRequest request;
            request.address = same_row
                                  ? 0x10000 + 64ull * i
                                  // XOR fold: use stride 17 rows to
                                  // stay in one bank.
                                  : 0x10000 + row_stride * 17 * i;
            request.onComplete = [&](Tick t) {
                last = std::max(last, t);
            };
            controller.enqueueRead(std::move(request));
        }
        events.run();
        return last;
    };
    EXPECT_LT(run(true), run(false));
}

TEST(Controller, ReadsCompleteInMonotoneBusOrder)
{
    sim::EventQueue events;
    MemoryController controller(events, specConfig());
    util::Rng rng(5);
    std::vector<Tick> completions;
    for (int i = 0; i < 200; ++i) {
        MemRequest request;
        request.address = (rng.next() % (1ull << 28)) & ~63ull;
        request.onComplete = [&](Tick t) { completions.push_back(t); };
        controller.enqueueRead(std::move(request));
    }
    events.run();
    ASSERT_EQ(completions.size(), 200u);
    // The data bus serializes bursts: completions never overlap.
    std::sort(completions.begin(), completions.end());
    for (std::size_t i = 1; i < completions.size(); ++i) {
        EXPECT_GE(completions[i] - completions[i - 1],
                  specConfig().readModeTiming.tBURST);
    }
}

TEST(Controller, WriteDrainEntersAndExitsWriteMode)
{
    sim::EventQueue events;
    auto config = specConfig();
    MemoryController controller(events, config);
    for (std::size_t i = 0; i < config.writeDrainHigh + 4; ++i) {
        MemRequest request;
        request.address = 0x2000 + 64 * i;
        request.type = MemRequest::Type::kWrite;
        controller.enqueueWrite(std::move(request));
    }
    events.run();
    EXPECT_GE(controller.stats().writeModeEntries, 1u);
    EXPECT_GT(controller.stats().writes, 0u);
    EXPECT_EQ(controller.mode(), ChannelMode::kRead);
}

TEST(Controller, BroadcastWriteTouchesAllTargets)
{
    sim::EventQueue events;
    MemoryController controller(events, specConfig());
    RankPolicy policy;
    policy.writeTargets = [](unsigned home) {
        RankSet set;
        set.add(home);
        set.add(home + 2);
        return set;
    };
    controller.setRankPolicy(policy);

    MemRequest request;
    request.address = 0x8000;
    request.type = MemRequest::Type::kWrite;
    controller.enqueueWrite(std::move(request));
    controller.requestWriteMode();
    events.run();
    EXPECT_EQ(controller.stats().writes, 1u);      // one bus transfer
    EXPECT_EQ(controller.stats().writeRankOps, 2u); // two ranks updated
}

TEST(Controller, RefreshesHappenAtTrefiRate)
{
    sim::EventQueue events;
    MemoryController controller(events, specConfig());
    // Keep the channel alive for ~1 ms of simulated time.
    std::function<void(Tick)> again = [&](Tick) {
        if (events.curTick() < util::kTicksPerMs) {
            MemRequest request;
            request.address = 0x1000;
            request.onComplete = again;
            controller.enqueueRead(std::move(request));
        }
    };
    again(0);
    events.run();
    // 4 ranks x (1 ms / 7.8 us) ~= 512 refreshes.
    EXPECT_NEAR(static_cast<double>(controller.stats().refreshes),
                512.0, 96.0);
}

TEST(Controller, SelfRefreshRanksAreNotRefreshed)
{
    sim::EventQueue events;
    auto config = specConfig();
    config.selfRefreshRankMask = 0b0011;
    MemoryController controller(events, config);
    std::function<void(Tick)> again = [&](Tick) {
        if (events.curTick() < util::kTicksPerMs) {
            MemRequest request;
            request.address = 0x1000;
            // Route to awake ranks via a policy below.
            request.onComplete = again;
            controller.enqueueRead(std::move(request));
        }
    };
    RankPolicy policy;
    policy.readCandidates = [](unsigned home) {
        return RankSet::single(2 + (home & 1));
    };
    controller.setRankPolicy(policy);
    again(0);
    events.run();
    controller.finalizeStats(); // close time-integrated counters
    // Only the two awake ranks refresh: about half the refreshes.
    EXPECT_NEAR(static_cast<double>(controller.stats().refreshes),
                256.0, 64.0);
    EXPECT_GT(controller.stats().selfRefreshRankTicks, 0u);
}

TEST(Controller, ErrorInjectionCountsAndRecovers)
{
    sim::EventQueue events;
    auto config = specConfig();
    config.readErrorProbability = 0.5;
    config.errorRecoveryLatency = util::usToTicks(2.2);
    MemoryController controller(events, config);
    unsigned errors_seen = 0;
    ControllerHooks hooks;
    hooks.onReadError = [&] { ++errors_seen; };
    controller.setHooks(std::move(hooks));

    for (int i = 0; i < 100; ++i) {
        MemRequest request;
        request.address = 0x100000 + 64 * i;
        controller.enqueueRead(std::move(request));
    }
    events.run();
    EXPECT_EQ(controller.stats().readErrors, errors_seen);
    EXPECT_NEAR(static_cast<double>(errors_seen), 50.0, 25.0);
    // Recoveries serialize the channel: ~errors x 2.2 us of run time.
    EXPECT_GE(events.curTick(),
              errors_seen * util::usToTicks(2.0));
}

TEST(Controller, ReconfigureAppliesAtTransition)
{
    sim::EventQueue events;
    auto config = specConfig();
    MemoryController controller(events, config);

    auto fast = config;
    fast.readModeTiming = DramTiming::fromSetting(
        MemorySetting::exploitFreqLatMargins());
    controller.reconfigure(fast);

    // Trigger a write-mode round trip to latch the new timing.
    for (int i = 0; i < 8; ++i) {
        MemRequest request;
        request.address = 0x3000 + 64 * i;
        request.type = MemRequest::Type::kWrite;
        controller.enqueueWrite(std::move(request));
    }
    controller.requestWriteMode();
    events.run();
    EXPECT_EQ(controller.config().readModeTiming.dataRateMts, 4000u);
}

} // namespace
