/**
 * @file
 * Tests for the bench result-cache wire format (bench/eval_cache):
 * serialize -> parse round-trip, rejection of malformed records with
 * Status codes naming the offending cell, the never-half-filled
 * output contract, and the resource caps (name length, row count)
 * that keep a corrupt or hostile cache from ballooning memory.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "eval_cache.hh"
#include "util/status.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::bench;

EvalRow
referenceRow()
{
    EvalRow row;
    row.benchmark = "bt.C";
    row.suite = "npb";
    row.hierarchy = "Hierarchy1";
    row.system = "ddr4-2400";
    row.marginMts = 200;
    row.usageClass = 1;
    row.execSeconds = 12.5;
    row.epiNj = 3.25;
    row.dramAccessesPerInstruction = 0.02;
    row.busUtilization = 0.5;
    row.readBandwidthGBs = 10.0;
    row.writeBandwidthGBs = 5.0;
    row.commFraction = 0.25;
    row.corrections = 100.0;
    return row;
}

util::Status
parseLine(const std::string &line, EvalRow *row)
{
    const traces::CsvCursor at{"cache.csv", 7};
    return parseEvalRow(at, line, row);
}

void
expectRejected(const std::string &line, util::StatusCode code,
               const std::string &needle)
{
    EvalRow row;
    const util::Status status = parseLine(line, &row);
    EXPECT_EQ(status.code(), code) << status.toString();
    EXPECT_NE(status.message().find(needle), std::string::npos)
        << status.message();
    // *row is default-initialized on error, never half-filled.
    EXPECT_TRUE(row.benchmark.empty());
    EXPECT_EQ(row.marginMts, 0u);
}

TEST(EvalCache, SerializeParseRoundTrip)
{
    const EvalRow row = referenceRow();
    EvalRow parsed;
    const util::Status status =
        parseLine(serializeEvalRow(row), &parsed);
    ASSERT_TRUE(status.ok()) << status.message();
    EXPECT_EQ(parsed.benchmark, row.benchmark);
    EXPECT_EQ(parsed.suite, row.suite);
    EXPECT_EQ(parsed.hierarchy, row.hierarchy);
    EXPECT_EQ(parsed.system, row.system);
    EXPECT_EQ(parsed.marginMts, row.marginMts);
    EXPECT_EQ(parsed.usageClass, row.usageClass);
    EXPECT_EQ(parsed.execSeconds, row.execSeconds);
    EXPECT_EQ(parsed.epiNj, row.epiNj);
    EXPECT_EQ(parsed.dramAccessesPerInstruction,
              row.dramAccessesPerInstruction);
    EXPECT_EQ(parsed.busUtilization, row.busUtilization);
    EXPECT_EQ(parsed.readBandwidthGBs, row.readBandwidthGBs);
    EXPECT_EQ(parsed.writeBandwidthGBs, row.writeBandwidthGBs);
    EXPECT_EQ(parsed.commFraction, row.commFraction);
    EXPECT_EQ(parsed.corrections, row.corrections);
}

TEST(EvalCache, RejectsWrongFieldCount)
{
    expectRejected("bt.C,npb,Hierarchy1",
                   util::StatusCode::kDataLoss, "cache.csv:7");
}

TEST(EvalCache, RejectsEmptyNameField)
{
    expectRejected(",npb,Hierarchy1,ddr4-2400,200,0,1,1,1,0.5,1,1,0.5,1",
                   util::StatusCode::kDataLoss, "empty name");
}

TEST(EvalCache, RejectsOverLongNameField)
{
    const std::string name(kMaxEvalNameBytes + 1, 'x');
    expectRejected(name +
                       ",npb,Hierarchy1,ddr4-2400,200,0,1,1,1,0.5,1,1,"
                       "0.5,1",
                   util::StatusCode::kResourceExhausted, "benchmark");
}

TEST(EvalCache, RejectsNonNumericStat)
{
    expectRejected(
        "bt.C,npb,Hierarchy1,ddr4-2400,200,0,fast,1,1,0.5,1,1,0.5,1",
        util::StatusCode::kDataLoss, "execSeconds");
}

TEST(EvalCache, RejectsOutOfRangeUtilization)
{
    expectRejected(
        "bt.C,npb,Hierarchy1,ddr4-2400,200,0,1,1,1,2.0,1,1,0.5,1",
        util::StatusCode::kOutOfRange, "busUtilization");
}

TEST(EvalCache, RejectsOutOfRangeUsageClass)
{
    expectRejected(
        "bt.C,npb,Hierarchy1,ddr4-2400,200,3,1,1,1,0.5,1,1,0.5,1",
        util::StatusCode::kOutOfRange, "usageClass");
}

TEST(EvalCache, LoadSkipsCommentsAndBlankLines)
{
    std::istringstream in("# eval cache v1\n\n" +
                          serializeEvalRow(referenceRow()) + "\n");
    std::vector<EvalRow> rows;
    const util::Status status = loadEvalCache(in, "cache.csv", &rows);
    ASSERT_TRUE(status.ok()) << status.message();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].benchmark, "bt.C");
}

TEST(EvalCache, LoadClearsRowsOnMidStreamError)
{
    std::istringstream in(serializeEvalRow(referenceRow()) + "\n" +
                          "truncated,record\n");
    std::vector<EvalRow> rows;
    const util::Status status = loadEvalCache(in, "cache.csv", &rows);
    EXPECT_EQ(status.code(), util::StatusCode::kDataLoss)
        << status.toString();
    EXPECT_NE(status.message().find("cache.csv:2"), std::string::npos)
        << status.message();
    EXPECT_TRUE(rows.empty()) << "error must not half-fill the output";
}

TEST(EvalCache, LoadRejectsOverLongLine)
{
    std::istringstream in(std::string(traces::kMaxCsvLineBytes + 10,
                                      'x'));
    std::vector<EvalRow> rows;
    const util::Status status = loadEvalCache(in, "cache.csv", &rows);
    EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted)
        << status.toString();
    EXPECT_TRUE(rows.empty());
}

} // namespace
