#!/usr/bin/env python3
"""End-to-end last-good-snapshot recovery audit.

Drives the real fig17 binary through the corruption scenarios the
generation-walk resume path promises to survive:

  1. a straight-through run with periodic snapshots leaves a rotation
     of last-good generations behind;
  2. with the NEWEST generation bit-flipped (CRC mismatch), resume
     falls back to generation 1, warns with the structured error
     code, and finishes with byte-identical results - the digest
     trail mechanics underneath guarantee the resumed simulation
     replays the interrupted one exactly;
  3. with generations 0 AND 1 damaged differently (clobbered magic,
     truncation), resume falls back to generation 2 and still
     matches;
  4. with every generation destroyed, resume refuses loudly (exit 1,
     "no older generation was valid either") instead of silently
     starting over.

Corruption is inflicted through tools/corrupt_snapshot.py so the
tool the docs tell humans to reproduce reports with is itself under
test.

Usage: recovery_check.py FIG17_BINARY CORRUPT_TOOL SCRATCH_DIR
"""

import shutil
import subprocess
import sys
from pathlib import Path

FAILURES = 0


def check(ok: bool, what: str) -> None:
    global FAILURES
    print(f"{'ok' if ok else 'FAIL'}: {what}")
    if not ok:
        FAILURES += 1


def run(cmd, **kwargs):
    return subprocess.run(
        cmd, capture_output=True, text=True, **kwargs)


def result_lines(stdout: str):
    """The benchmark's result output, minus the resume preamble."""
    lines = [line for line in stdout.splitlines()
             if not line.startswith("resuming sweep from ")]
    while lines and not lines[0]:
        lines.pop(0)
    return lines


def main(argv):
    if len(argv) != 4:
        print(f"usage: {argv[0]} FIG17_BINARY CORRUPT_TOOL "
              "SCRATCH_DIR", file=sys.stderr)
        return 2
    fig17, corrupt_tool = argv[1], argv[2]
    scratch = Path(argv[3])
    shutil.rmtree(scratch, ignore_errors=True)
    scratch.mkdir(parents=True)
    snap = scratch / "fig17.snap"

    snap_flags = [f"--snapshot-path={snap}", "--snapshot-every=43200",
                  "--snapshot-keep=3"]

    # 1. Straight-through baseline, leaving snapshot generations.
    base = run([fig17] + snap_flags)
    check(base.returncode == 0, "baseline run completes")
    generations = [snap, Path(f"{snap}.1"), Path(f"{snap}.2")]
    check(all(g.exists() for g in generations),
          "periodic snapshots left 3 generations")
    baseline = result_lines(base.stdout)

    # Keep a pristine copy of the rotation: resumed runs rotate fresh
    # snapshots of their own, so each scenario restores this known
    # all-valid state before inflicting its damage.
    pristine = scratch / "pristine"
    pristine.mkdir()
    for g in generations:
        shutil.copy2(g, pristine / g.name)

    def restore_rotation():
        for g in generations:
            shutil.copy2(pristine / g.name, g)

    def corrupt(mode, path, *args):
        done = run([sys.executable, corrupt_tool, mode, str(path)]
                   + [str(a) for a in args])
        check(done.returncode == 0,
              f"corrupt_snapshot {mode} {path.name}")

    # 2. Newest generation bit-flipped -> fall back to generation 1.
    corrupt("flip", snap)
    resumed = run([fig17, f"--resume-from={snap}"] + snap_flags)
    check(resumed.returncode == 0,
          "resume survives a bit-flipped newest generation")
    check("generation 0 unusable [data_loss]" in resumed.stderr,
          "fallback warns with the structured error code")
    check(f"recovered: generation 1 ({snap}.1)" in resumed.stderr,
          "fallback names the generation it recovered from")
    check(result_lines(resumed.stdout) == baseline,
          "recovered run's results are byte-identical to the baseline")

    # 3. Generations 0 AND 1 damaged differently -> generation 2.
    restore_rotation()
    corrupt("magic", snap)
    corrupt("truncate", Path(f"{snap}.1"))
    resumed2 = run([fig17, f"--resume-from={snap}"] + snap_flags)
    check(resumed2.returncode == 0,
          "resume survives two damaged generations")
    check(f"recovered: generation 2 ({snap}.2)" in resumed2.stderr,
          "fallback walked to generation 2")
    check(result_lines(resumed2.stdout) == baseline,
          "doubly-recovered run still matches the baseline")

    # 4. Every generation destroyed -> loud, structured refusal.
    restore_rotation()
    corrupt("flip", snap)
    corrupt("truncate", Path(f"{snap}.1"), 4)
    corrupt("magic", Path(f"{snap}.2"))
    dead = run([fig17, f"--resume-from={snap}"] + snap_flags)
    check(dead.returncode == 1,
          "resume with no valid generation exits nonzero")
    check("no older generation was valid either" in dead.stderr,
          "refusal says the whole rotation was exhausted")

    if FAILURES:
        print(f"\n{FAILURES} check(s) FAILED")
        return 1
    print("\nall recovery checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
