/**
 * @file
 * Cross-module property sweeps (parameterized gtest): Reed-Solomon
 * geometry invariants, DRAM data-rate monotonicity, workload stream
 * invariants for every catalog benchmark, and Monte-Carlo scaling
 * laws.
 */

#include <gtest/gtest.h>

#include <functional>
#include <tuple>

#include "dram/controller.hh"
#include "ecc/reed_solomon.hh"
#include "margin/monte_carlo.hh"
#include "util/rng.hh"
#include "workloads/hpc_workloads.hh"

namespace
{

using namespace hdmr;

// --------------------------------------------------------------------
// Reed-Solomon geometry sweep
// --------------------------------------------------------------------

class RsGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RsGeometry, RoundTripAndCorrectionCapability)
{
    const auto [k, parity] = GetParam();
    ecc::ReedSolomon rs(static_cast<std::size_t>(k),
                        static_cast<std::size_t>(parity));
    EXPECT_EQ(rs.correctionCapability(),
              static_cast<std::size_t>(parity) / 2);

    util::Rng rng(static_cast<std::uint64_t>(k * 131 + parity));
    for (int trial = 0; trial < 25; ++trial) {
        std::vector<ecc::GfElem> message(k);
        for (auto &symbol : message)
            symbol = static_cast<ecc::GfElem>(rng.uniformInt(0, 255));
        auto codeword = message;
        const auto p = rs.encode(message);
        codeword.insert(codeword.end(), p.begin(), p.end());
        EXPECT_FALSE(rs.detect(codeword));

        // Corrupt exactly t distinct symbols: must correct.
        auto bad = codeword;
        const std::size_t t = rs.correctionCapability();
        for (std::size_t e = 0; e < t; ++e) {
            std::size_t pos;
            do {
                pos = rng.uniformInt(0, bad.size() - 1);
            } while (bad[pos] != codeword[pos]);
            bad[pos] ^= static_cast<ecc::GfElem>(
                rng.uniformInt(1, 255));
        }
        const auto result = rs.correct(bad);
        EXPECT_EQ(result.status, ecc::DecodeStatus::kCorrected);
        EXPECT_EQ(bad, codeword);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsGeometry,
    ::testing::Values(std::make_tuple(16, 4), std::make_tuple(32, 8),
                      std::make_tuple(64, 8),
                      std::make_tuple(128, 16),
                      std::make_tuple(200, 32)));

// --------------------------------------------------------------------
// DRAM data-rate sweep
// --------------------------------------------------------------------

class DataRateSweep : public ::testing::TestWithParam<unsigned>
{
  protected:
    /** Time to stream `n` random reads at the given data rate. */
    static util::Tick
    drain(unsigned rate_mts, int n)
    {
        sim::EventQueue events;
        dram::ControllerConfig config;
        config.readModeTiming = dram::DramTiming::fromSetting(
            dram::MemorySetting::manufacturerSpec(rate_mts));
        config.writeModeTiming = config.readModeTiming;
        dram::MemoryController controller(events, config);
        util::Rng rng(7);
        int outstanding = 0, sent = 0;
        util::Tick last = 0;
        std::function<void()> pump = [&] {
            while (outstanding < 48 && sent < n &&
                   !controller.readQueueFull()) {
                dram::MemRequest request;
                request.address =
                    (rng.next() % (1ull << 28)) & ~63ull;
                request.arrival = events.curTick();
                request.onComplete = [&](util::Tick t) {
                    --outstanding;
                    last = std::max(last, t);
                    pump();
                };
                controller.enqueueRead(std::move(request));
                ++outstanding;
                ++sent;
            }
        };
        pump();
        events.run();
        return last;
    }
};

TEST_P(DataRateSweep, TimingDerivesConsistently)
{
    const unsigned rate = GetParam();
    const auto timing = dram::DramTiming::fromSetting(
        dram::MemorySetting::manufacturerSpec(rate));
    EXPECT_EQ(timing.tCK, util::dataRateToTck(rate));
    EXPECT_EQ(timing.tBURST, 4 * timing.tCK);
    EXPECT_EQ(timing.tCCD, timing.tBURST);
}

TEST_P(DataRateSweep, ThroughputNeverDropsWithRate)
{
    const unsigned rate = GetParam();
    if (rate <= 2400)
        GTEST_SKIP() << "baseline of the comparison";
    const auto slower = drain(rate - 400, 5000);
    const auto faster = drain(rate, 5000);
    EXPECT_LE(faster, slower + slower / 20); // within 5 % monotone
}

INSTANTIATE_TEST_SUITE_P(Rates, DataRateSweep,
                         ::testing::Values(2400u, 2800u, 3200u, 3600u,
                                           4000u));

// --------------------------------------------------------------------
// Workload catalog sweep
// --------------------------------------------------------------------

class WorkloadSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(WorkloadSweep, StreamInvariants)
{
    const auto &params = wl::benchmarkCatalog()[GetParam()];
    const unsigned rank = 2;
    const std::uint64_t ops = 8000;
    wl::SyntheticHpcStream stream(params, rank, ops, 5);

    const std::uint64_t base = (static_cast<std::uint64_t>(rank) + 1)
                               << 34;
    const std::uint64_t span = 4ull << 34; // generous region bound

    wl::Op op;
    std::uint64_t mem_ops = 0, stores = 0;
    double compute = 0.0;
    while (stream.next(op)) {
        switch (op.kind) {
          case wl::Op::Kind::kLoad:
          case wl::Op::Kind::kStore:
            ++mem_ops;
            stores += op.kind == wl::Op::Kind::kStore;
            EXPECT_GE(op.address, base);
            EXPECT_LT(op.address, base + span);
            break;
          case wl::Op::Kind::kCompute:
            compute += op.count;
            break;
          case wl::Op::Kind::kComm:
            EXPECT_GT(op.duration, 0u);
            break;
        }
    }
    EXPECT_EQ(mem_ops, ops);
    EXPECT_NEAR(static_cast<double>(stores) / ops,
                params.writeFraction, 0.03);
    EXPECT_NEAR(compute / static_cast<double>(mem_ops),
                params.computePerMemOp, params.computePerMemOp * 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, WorkloadSweep,
    ::testing::Range<std::size_t>(0, 14));

// --------------------------------------------------------------------
// Monte-Carlo scaling laws
// --------------------------------------------------------------------

class ChannelsPerNodeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ChannelsPerNodeSweep, MoreChannelsLowerNodeMargin)
{
    // The node margin is a minimum over channels: adding channels can
    // only shrink the fraction of nodes at the top margin.
    margin::MonteCarloConfig fewer, more;
    fewer.trials = more.trials = 30000;
    fewer.channelsPerNode = GetParam();
    more.channelsPerNode = GetParam() * 2;
    const auto f = margin::nodeMarginDistribution(fewer, 3);
    const auto m = margin::nodeMarginDistribution(more, 3);
    EXPECT_GE(f.fractionAtLeast(800) + 0.01, m.fractionAtLeast(800));
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelsPerNodeSweep,
                         ::testing::Values(1u, 2u, 4u, 6u));

} // namespace
