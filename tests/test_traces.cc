/**
 * @file
 * Tests for the trace layer: generator statistics stay sane, the CSV
 * loaders round-trip what the writers produce, and - the point of the
 * hardening pass - every malformed input class (truncated lines,
 * non-numeric text, non-finite numbers, out-of-range fields, shuffled
 * or ragged usage series) is rejected with a util::Status naming the
 * file, line and field instead of silently skewing results.  Parse
 * errors are kDataLoss, range violations kOutOfRange, a missing file
 * kNotFound - and a failed load leaves the output container empty,
 * never half-filled.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "traces/csv.hh"
#include "traces/job_trace.hh"
#include "traces/memory_usage.hh"
#include "util/status.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::traces;

/** Writes the given text to a temp CSV, removes it on teardown. */
class CsvFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // ctest runs each test as its own process in one working
        // directory, so the file name must be unique per test.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = std::string("test_traces_") + info->test_suite_name() +
                "_" + info->name() + ".csv";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    const std::string &
    write(const std::string &text)
    {
        std::ofstream out(path_, std::ios::trunc);
        out << text;
        return path_;
    }

    std::string path_;
};

using JobTraceCsv = CsvFileTest;
using UsageTraceCsv = CsvFileTest;

/** The status a load attempt of `path` returns (jobs discarded). */
util::Status
jobLoadStatus(const std::string &path)
{
    std::vector<Job> jobs;
    return loadJobTraceCsv(path, &jobs);
}

util::Status
usageLoadStatus(const std::string &path)
{
    std::vector<JobUsageTrace> traces;
    return loadUsageTraceCsv(path, &traces);
}

/** Expect `status` to carry `code` and a message matching `pattern`. */
void
expectStatus(const util::Status &status, util::StatusCode code,
             const std::string &needle)
{
    EXPECT_EQ(status.code(), code) << status.message();
    EXPECT_NE(status.message().find(needle), std::string::npos)
        << "expected '" << needle << "' in: " << status.message();
}

// --------------------------------------------------------------------
// CSV field parsing
// --------------------------------------------------------------------

TEST(CsvFields, SplitsAndRejectsWrongArity)
{
    const CsvCursor at{"grid.csv", 7};
    std::vector<std::string> fields;
    ASSERT_TRUE(splitCsvLine(at, "a,,c", 3, &fields).ok());
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "c");

    expectStatus(splitCsvLine(at, "a,b", 3, &fields),
                 util::StatusCode::kDataLoss, "grid.csv:7");
    expectStatus(splitCsvLine(at, "a,b", 3, &fields),
                 util::StatusCode::kDataLoss, "expected 3");
    expectStatus(splitCsvLine(at, "a,b,c,d", 3, &fields),
                 util::StatusCode::kDataLoss, "got 4");
}

TEST(CsvFields, ParsesStrictDoubles)
{
    const CsvCursor at{"grid.csv", 3};
    double value = 0.0;
    ASSERT_TRUE(
        parseCsvDouble(at, "x", "2.5e-3", 0.0, 1.0, &value).ok());
    EXPECT_DOUBLE_EQ(value, 2.5e-3);
    expectStatus(parseCsvDouble(at, "x", "", 0.0, 1.0, &value),
                 util::StatusCode::kDataLoss, "field 'x': empty");
    expectStatus(parseCsvDouble(at, "x", "1.5abc", 0.0, 10.0, &value),
                 util::StatusCode::kDataLoss, "not a number");
    expectStatus(parseCsvDouble(at, "x", "nan", 0.0, 1.0, &value),
                 util::StatusCode::kDataLoss, "not finite");
    expectStatus(parseCsvDouble(at, "x", "inf", 0.0, 1.0, &value),
                 util::StatusCode::kDataLoss, "not finite");
    expectStatus(parseCsvDouble(at, "x", "1.2", 0.0, 1.0, &value),
                 util::StatusCode::kOutOfRange, "out of range");
}

TEST(CsvFields, ParsesStrictUnsigned)
{
    const CsvCursor at{"grid.csv", 9};
    std::uint64_t value = 0;
    ASSERT_TRUE(parseCsvUnsigned(at, "n", "42", 0, 100, &value).ok());
    EXPECT_EQ(value, 42u);
    expectStatus(parseCsvUnsigned(at, "n", "-1", 0, 100, &value),
                 util::StatusCode::kDataLoss, "not an unsigned");
    expectStatus(parseCsvUnsigned(at, "n", "3.5", 0, 100, &value),
                 util::StatusCode::kDataLoss, "not an unsigned");
    expectStatus(parseCsvUnsigned(at, "n", "", 0, 100, &value),
                 util::StatusCode::kDataLoss, "empty");
    expectStatus(parseCsvUnsigned(at, "n", "101", 0, 100, &value),
                 util::StatusCode::kOutOfRange, "out of range");
    expectStatus(parseCsvUnsigned(at, "n", "99999999999999999999999",
                                  0, ~0ull, &value),
                 util::StatusCode::kDataLoss, "does not fit");
}

// --------------------------------------------------------------------
// Job-trace CSV
// --------------------------------------------------------------------

TEST_F(JobTraceCsv, RoundTripsGeneratedTrace)
{
    JobTraceModel model;
    model.numJobs = 200;
    GrizzlyTraceGenerator generator(model, 7);
    const std::vector<Job> jobs = generator.generate();

    ASSERT_TRUE(writeJobTraceCsv(path_, jobs).ok());
    const std::vector<Job> loaded = loadJobTraceCsvOrDie(path_);

    ASSERT_EQ(loaded.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(loaded[i].id, jobs[i].id);
        EXPECT_DOUBLE_EQ(loaded[i].submitSeconds, jobs[i].submitSeconds);
        EXPECT_EQ(loaded[i].nodes, jobs[i].nodes);
        EXPECT_DOUBLE_EQ(loaded[i].runtimeSeconds,
                         jobs[i].runtimeSeconds);
        EXPECT_DOUBLE_EQ(loaded[i].walltimeSeconds,
                         jobs[i].walltimeSeconds);
        EXPECT_EQ(loaded[i].usageClass, jobs[i].usageClass);
    }
}

TEST_F(JobTraceCsv, SortsBySubmitTimeAndSkipsComments)
{
    const auto &path = write("# id,submit_s,nodes,runtime,wall,class\n"
                             "2,500,4,100,200,1\n"
                             "\n"
                             "1,100,1,60,120,0\n");
    const auto jobs = loadJobTraceCsvOrDie(path);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].id, 1u);
    EXPECT_EQ(jobs[1].id, 2u);
}

TEST_F(JobTraceCsv, RejectsTruncatedLine)
{
    const auto &path = write("1,100,4,60\n");
    expectStatus(jobLoadStatus(path), util::StatusCode::kDataLoss,
                 "RejectsTruncatedLine.csv:1");
    expectStatus(jobLoadStatus(path), util::StatusCode::kDataLoss,
                 "expected 6");
}

TEST_F(JobTraceCsv, RejectsNonFiniteRuntime)
{
    const auto &path = write("1,100,4,inf,200,0\n");
    expectStatus(jobLoadStatus(path), util::StatusCode::kDataLoss,
                 "field 'runtime_s'");
    expectStatus(jobLoadStatus(path), util::StatusCode::kDataLoss,
                 "not finite");
}

TEST_F(JobTraceCsv, RejectsZeroNodes)
{
    const auto &path = write("1,100,0,60,120,0\n");
    expectStatus(jobLoadStatus(path), util::StatusCode::kOutOfRange,
                 "field 'nodes'");
}

TEST_F(JobTraceCsv, RejectsUsageClassPastTwo)
{
    const auto &path = write("1,100,4,60,120,3\n");
    expectStatus(jobLoadStatus(path), util::StatusCode::kOutOfRange,
                 "field 'usage_class'");
}

TEST_F(JobTraceCsv, RejectsWalltimeBelowRuntime)
{
    const auto &path = write("1,100,4,600,120,0\n"); // wall < runtime
    expectStatus(jobLoadStatus(path), util::StatusCode::kOutOfRange,
                 "below the job's runtime");
}

TEST_F(JobTraceCsv, NamesLineOfBadRecord)
{
    const auto &path = write("1,100,4,60,120,0\n"
                             "2,oops,4,60,120,0\n");
    expectStatus(jobLoadStatus(path), util::StatusCode::kDataLoss,
                 "NamesLineOfBadRecord.csv:2");
    expectStatus(jobLoadStatus(path), util::StatusCode::kDataLoss,
                 "field 'submit_s'");
}

TEST_F(JobTraceCsv, FailedLoadLeavesOutputEmpty)
{
    const auto &path = write("1,100,4,60,120,0\n"
                             "2,oops,4,60,120,0\n");
    std::vector<Job> jobs;
    ASSERT_FALSE(loadJobTraceCsv(path, &jobs).ok());
    EXPECT_TRUE(jobs.empty());
}

TEST_F(JobTraceCsv, LoadOrDieExitsWithMessage)
{
    // The thin CLI wrapper keeps the old die-with-message behaviour.
    const auto &path = write("1,100,4,60\n");
    EXPECT_EXIT(loadJobTraceCsvOrDie(path),
                ::testing::ExitedWithCode(1), "expected 6.*got 4");
}

// --------------------------------------------------------------------
// Usage-trace CSV
// --------------------------------------------------------------------

TEST_F(UsageTraceCsv, RoundTripsGeneratedTraces)
{
    MemoryUsageTraceGenerator generator(UsageModel{}, 11);
    const auto traces = generator.generate(50);

    ASSERT_TRUE(writeUsageTraceCsv(path_, traces).ok());
    const auto loaded = loadUsageTraceCsvOrDie(path_);

    ASSERT_EQ(loaded.size(), traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        EXPECT_EQ(loaded[i].jobId, traces[i].jobId);
        EXPECT_EQ(loaded[i].nodes, traces[i].nodes);
        ASSERT_EQ(loaded[i].utilization, traces[i].utilization);
    }
    // And the paper's analysis sees the same fractions either way.
    const auto direct = analyzeUsage(traces);
    const auto viaCsv = analyzeUsage(loaded);
    EXPECT_DOUBLE_EQ(viaCsv.fractionUnder50, direct.fractionUnder50);
    EXPECT_DOUBLE_EQ(viaCsv.fractionUnder25, direct.fractionUnder25);
}

TEST_F(UsageTraceCsv, RejectsUtilizationAboveOne)
{
    const auto &path = write("1,0,0,1.2\n");
    expectStatus(usageLoadStatus(path), util::StatusCode::kOutOfRange,
                 "field 'utilization'");
}

TEST_F(UsageTraceCsv, RejectsOutOfOrderSamples)
{
    const auto &path = write("1,0,0,0.5\n"
                             "1,0,2,0.5\n"); // sample 1 missing
    expectStatus(usageLoadStatus(path), util::StatusCode::kDataLoss,
                 "field 'sample'");
    expectStatus(usageLoadStatus(path), util::StatusCode::kDataLoss,
                 "out of order");
}

TEST_F(UsageTraceCsv, RejectsOutOfOrderNodes)
{
    const auto &path = write("1,0,0,0.5\n"
                             "1,2,0,0.5\n"); // node 1 missing
    expectStatus(usageLoadStatus(path), util::StatusCode::kDataLoss,
                 "field 'node'");
    expectStatus(usageLoadStatus(path), util::StatusCode::kDataLoss,
                 "out of order");
}

TEST_F(UsageTraceCsv, RejectsRaggedJobs)
{
    const auto &path = write("1,0,0,0.5\n"
                             "1,0,1,0.5\n"
                             "1,1,0,0.5\n" // node 1 has 1 sample
                             "2,0,0,0.5\n");
    expectStatus(usageLoadStatus(path), util::StatusCode::kDataLoss,
                 "job 1 is ragged");
}

TEST_F(UsageTraceCsv, FailedLoadLeavesOutputEmpty)
{
    const auto &path = write("1,0,0,0.5\n"
                             "1,0,2,0.5\n");
    std::vector<JobUsageTrace> traces;
    ASSERT_FALSE(loadUsageTraceCsv(path, &traces).ok());
    EXPECT_TRUE(traces.empty());
}

TEST_F(UsageTraceCsv, OverLongLineIsResourceExhausted)
{
    std::string line(kMaxCsvLineBytes + 10, '9');
    const auto &path = write(line + "\n");
    expectStatus(usageLoadStatus(path),
                 util::StatusCode::kResourceExhausted, "line");
    expectStatus(jobLoadStatus(path),
                 util::StatusCode::kResourceExhausted, "line");
}

TEST_F(UsageTraceCsv, MissingFileIsNotFound)
{
    expectStatus(usageLoadStatus("no_such_file.csv"),
                 util::StatusCode::kNotFound, "cannot open");
    expectStatus(jobLoadStatus("no_such_file.csv"),
                 util::StatusCode::kNotFound, "cannot open");
    // The OrDie wrappers keep the old die-with-message behaviour.
    EXPECT_EXIT(loadUsageTraceCsvOrDie("no_such_file.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
    EXPECT_EXIT(loadJobTraceCsvOrDie("no_such_file.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
