/**
 * @file
 * Tests for the trace layer: generator statistics stay sane, the CSV
 * loaders round-trip what the writers produce, and - the point of the
 * hardening pass - every malformed input class (truncated lines,
 * non-numeric text, non-finite numbers, out-of-range fields, shuffled
 * or ragged usage series) dies with a fatal() naming the file, line
 * and field instead of silently skewing results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "traces/csv.hh"
#include "traces/job_trace.hh"
#include "traces/memory_usage.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::traces;

/** Writes the given text to a temp CSV, removes it on teardown. */
class CsvFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // ctest runs each test as its own process in one working
        // directory, so the file name must be unique per test.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = std::string("test_traces_") + info->test_suite_name() +
                "_" + info->name() + ".csv";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    const std::string &
    write(const std::string &text)
    {
        std::ofstream out(path_, std::ios::trunc);
        out << text;
        return path_;
    }

    std::string path_;
};

using JobTraceCsv = CsvFileTest;
using UsageTraceCsv = CsvFileTest;

// --------------------------------------------------------------------
// CSV field parsing
// --------------------------------------------------------------------

TEST(CsvFields, SplitsAndRejectsWrongArity)
{
    const CsvCursor at{"grid.csv", 7};
    const auto fields = splitCsvLine(at, "a,,c", 3);
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "c");

    EXPECT_EXIT(splitCsvLine(at, "a,b", 3),
                ::testing::ExitedWithCode(1), "grid.csv:7.*expected 3");
    EXPECT_EXIT(splitCsvLine(at, "a,b,c,d", 3),
                ::testing::ExitedWithCode(1), "got 4");
}

TEST(CsvFields, ParsesStrictDoubles)
{
    const CsvCursor at{"grid.csv", 3};
    EXPECT_DOUBLE_EQ(parseCsvDouble(at, "x", "2.5e-3", 0.0, 1.0),
                     2.5e-3);
    EXPECT_EXIT(parseCsvDouble(at, "x", "", 0.0, 1.0),
                ::testing::ExitedWithCode(1), "field 'x': empty");
    EXPECT_EXIT(parseCsvDouble(at, "x", "1.5abc", 0.0, 10.0),
                ::testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(parseCsvDouble(at, "x", "nan", 0.0, 1.0),
                ::testing::ExitedWithCode(1), "not finite");
    EXPECT_EXIT(parseCsvDouble(at, "x", "inf", 0.0, 1.0),
                ::testing::ExitedWithCode(1), "not finite");
    EXPECT_EXIT(parseCsvDouble(at, "x", "1.2", 0.0, 1.0),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(CsvFields, ParsesStrictUnsigned)
{
    const CsvCursor at{"grid.csv", 9};
    EXPECT_EQ(parseCsvUnsigned(at, "n", "42", 0, 100), 42u);
    EXPECT_EXIT(parseCsvUnsigned(at, "n", "-1", 0, 100),
                ::testing::ExitedWithCode(1), "not an unsigned");
    EXPECT_EXIT(parseCsvUnsigned(at, "n", "3.5", 0, 100),
                ::testing::ExitedWithCode(1), "not an unsigned");
    EXPECT_EXIT(parseCsvUnsigned(at, "n", "", 0, 100),
                ::testing::ExitedWithCode(1), "empty");
    EXPECT_EXIT(parseCsvUnsigned(at, "n", "101", 0, 100),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(
        parseCsvUnsigned(at, "n", "99999999999999999999999", 0, ~0ull),
        ::testing::ExitedWithCode(1), "does not fit");
}

// --------------------------------------------------------------------
// Job-trace CSV
// --------------------------------------------------------------------

TEST_F(JobTraceCsv, RoundTripsGeneratedTrace)
{
    JobTraceModel model;
    model.numJobs = 200;
    GrizzlyTraceGenerator generator(model, 7);
    const std::vector<Job> jobs = generator.generate();

    writeJobTraceCsv(path_, jobs);
    const std::vector<Job> loaded = loadJobTraceCsv(path_);

    ASSERT_EQ(loaded.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(loaded[i].id, jobs[i].id);
        EXPECT_DOUBLE_EQ(loaded[i].submitSeconds, jobs[i].submitSeconds);
        EXPECT_EQ(loaded[i].nodes, jobs[i].nodes);
        EXPECT_DOUBLE_EQ(loaded[i].runtimeSeconds,
                         jobs[i].runtimeSeconds);
        EXPECT_DOUBLE_EQ(loaded[i].walltimeSeconds,
                         jobs[i].walltimeSeconds);
        EXPECT_EQ(loaded[i].usageClass, jobs[i].usageClass);
    }
}

TEST_F(JobTraceCsv, SortsBySubmitTimeAndSkipsComments)
{
    const auto &path = write("# id,submit_s,nodes,runtime,wall,class\n"
                             "2,500,4,100,200,1\n"
                             "\n"
                             "1,100,1,60,120,0\n");
    const auto jobs = loadJobTraceCsv(path);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].id, 1u);
    EXPECT_EQ(jobs[1].id, 2u);
}

TEST_F(JobTraceCsv, RejectsTruncatedLine)
{
    const auto &path = write("1,100,4,60\n");
    EXPECT_EXIT(loadJobTraceCsv(path), ::testing::ExitedWithCode(1),
                "RejectsTruncatedLine.csv:1.*expected 6.*got 4");
}

TEST_F(JobTraceCsv, RejectsNonFiniteRuntime)
{
    const auto &path = write("1,100,4,inf,200,0\n");
    EXPECT_EXIT(loadJobTraceCsv(path), ::testing::ExitedWithCode(1),
                "field 'runtime_s'.*not finite");
}

TEST_F(JobTraceCsv, RejectsZeroNodes)
{
    const auto &path = write("1,100,0,60,120,0\n");
    EXPECT_EXIT(loadJobTraceCsv(path), ::testing::ExitedWithCode(1),
                "field 'nodes'.*out of range");
}

TEST_F(JobTraceCsv, RejectsUsageClassPastTwo)
{
    const auto &path = write("1,100,4,60,120,3\n");
    EXPECT_EXIT(loadJobTraceCsv(path), ::testing::ExitedWithCode(1),
                "field 'usage_class'.*out of range");
}

TEST_F(JobTraceCsv, RejectsWalltimeBelowRuntime)
{
    const auto &path = write("1,100,4,600,120,0\n"); // wall < runtime
    EXPECT_EXIT(loadJobTraceCsv(path), ::testing::ExitedWithCode(1),
                "walltime_s.*below the job's runtime");
}

TEST_F(JobTraceCsv, NamesLineOfBadRecord)
{
    const auto &path = write("1,100,4,60,120,0\n"
                             "2,oops,4,60,120,0\n");
    EXPECT_EXIT(loadJobTraceCsv(path), ::testing::ExitedWithCode(1),
                "NamesLineOfBadRecord.csv:2.*field 'submit_s'");
}

// --------------------------------------------------------------------
// Usage-trace CSV
// --------------------------------------------------------------------

TEST_F(UsageTraceCsv, RoundTripsGeneratedTraces)
{
    MemoryUsageTraceGenerator generator(UsageModel{}, 11);
    const auto traces = generator.generate(50);

    writeUsageTraceCsv(path_, traces);
    const auto loaded = loadUsageTraceCsv(path_);

    ASSERT_EQ(loaded.size(), traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        EXPECT_EQ(loaded[i].jobId, traces[i].jobId);
        EXPECT_EQ(loaded[i].nodes, traces[i].nodes);
        ASSERT_EQ(loaded[i].utilization, traces[i].utilization);
    }
    // And the paper's analysis sees the same fractions either way.
    const auto direct = analyzeUsage(traces);
    const auto viaCsv = analyzeUsage(loaded);
    EXPECT_DOUBLE_EQ(viaCsv.fractionUnder50, direct.fractionUnder50);
    EXPECT_DOUBLE_EQ(viaCsv.fractionUnder25, direct.fractionUnder25);
}

TEST_F(UsageTraceCsv, RejectsUtilizationAboveOne)
{
    const auto &path = write("1,0,0,1.2\n");
    EXPECT_EXIT(loadUsageTraceCsv(path), ::testing::ExitedWithCode(1),
                "field 'utilization'.*out of range");
}

TEST_F(UsageTraceCsv, RejectsOutOfOrderSamples)
{
    const auto &path = write("1,0,0,0.5\n"
                             "1,0,2,0.5\n"); // sample 1 missing
    EXPECT_EXIT(loadUsageTraceCsv(path), ::testing::ExitedWithCode(1),
                "field 'sample'.*out of order");
}

TEST_F(UsageTraceCsv, RejectsOutOfOrderNodes)
{
    const auto &path = write("1,0,0,0.5\n"
                             "1,2,0,0.5\n"); // node 1 missing
    EXPECT_EXIT(loadUsageTraceCsv(path), ::testing::ExitedWithCode(1),
                "field 'node'.*out of order");
}

TEST_F(UsageTraceCsv, RejectsRaggedJobs)
{
    const auto &path = write("1,0,0,0.5\n"
                             "1,0,1,0.5\n"
                             "1,1,0,0.5\n" // node 1 has 1 sample
                             "2,0,0,0.5\n");
    EXPECT_EXIT(loadUsageTraceCsv(path), ::testing::ExitedWithCode(1),
                "job 1 is ragged");
}

TEST_F(UsageTraceCsv, MissingFileIsFatal)
{
    EXPECT_EXIT(loadUsageTraceCsv("no_such_file.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
    EXPECT_EXIT(loadJobTraceCsv("no_such_file.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
