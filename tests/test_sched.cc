/**
 * @file
 * Tests for the trace generators and the cluster scheduler: trace
 * calibration (load, usage classes), conservation invariants, EASY
 * backfill behaviour, margin-aware allocation, and the Fig. 17
 * orderings.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sched/cluster_sim.hh"
#include "traces/job_trace.hh"
#include "traces/memory_usage.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::sched;
using namespace hdmr::traces;

// --------------------------------------------------------------------
// Memory-usage traces (Fig. 1)
// --------------------------------------------------------------------

TEST(UsageTraces, FractionsMatchModel)
{
    UsageModel model;
    MemoryUsageTraceGenerator generator(model, 5);
    const auto jobs = generator.generate(5000);
    const auto analysis = analyzeUsage(jobs);
    EXPECT_EQ(analysis.jobs, 5000u);
    EXPECT_NEAR(analysis.fractionUnder50, model.under50Fraction, 0.03);
    EXPECT_NEAR(analysis.fractionUnder25, model.under25Fraction, 0.03);
}

TEST(UsageTraces, UtilizationWithinBounds)
{
    MemoryUsageTraceGenerator generator(UsageModel{}, 6);
    const auto job = generator.generateJob(16);
    EXPECT_EQ(job.utilization.size(), 16u);
    for (const auto &series : job.utilization)
        for (const double u : series) {
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0);
        }
    EXPECT_LE(job.peakUtilization(), 0.97);
}

TEST(UsageTraces, UsageClassDistribution)
{
    UsageModel model;
    MemoryUsageTraceGenerator generator(model, 7);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 20000; ++i)
        ++counts[generator.sampleUsageClass()];
    EXPECT_NEAR(counts[0] / 20000.0, 0.55, 0.02);
    EXPECT_NEAR((counts[0] + counts[1]) / 20000.0, 0.80, 0.02);
}

// --------------------------------------------------------------------
// Job traces (Grizzly)
// --------------------------------------------------------------------

TEST(JobTrace, CalibratedToTargetLoad)
{
    JobTraceModel model;
    model.numJobs = 20000;
    GrizzlyTraceGenerator generator(model, 9);
    const auto jobs = generator.generate();
    EXPECT_EQ(jobs.size(), 20000u);
    EXPECT_TRUE(std::is_sorted(jobs.begin(), jobs.end(),
                               [](const Job &a, const Job &b) {
                                   return a.submitSeconds <
                                          b.submitSeconds;
                               }));
    const double offered =
        traceNodeSeconds(jobs) /
        (model.systemNodes * model.spanSeconds);
    EXPECT_NEAR(offered, model.targetUtilization, 0.02);
    for (const auto &job : jobs) {
        EXPECT_GE(job.nodes, 1u);
        EXPECT_GE(job.walltimeSeconds, job.runtimeSeconds);
        EXPECT_LE(job.usageClass, 2u);
    }
}

// --------------------------------------------------------------------
// Cluster simulator
// --------------------------------------------------------------------

std::vector<Job>
smallTrace(std::size_t jobs = 6000, std::uint64_t seed = 11)
{
    JobTraceModel model;
    model.numJobs = jobs;
    model.spanSeconds = 14.0 * 86400;
    model.systemNodes = 256;
    GrizzlyTraceGenerator generator(model, seed);
    auto trace = generator.generate();
    // Clamp node counts to the small test system.
    for (auto &job : trace)
        job.nodes = std::min(job.nodes, 200u);
    return trace;
}

ClusterConfig
smallCluster(bool hdmr, bool aware)
{
    ClusterConfig config;
    config.nodes = 256;
    config.heteroDmr = hdmr;
    config.marginAware = aware;
    return config;
}

TEST(ClusterSim, AllJobsComplete)
{
    const auto trace = smallTrace();
    ClusterSimulator sim(smallCluster(false, false));
    const auto metrics = sim.run(trace);
    EXPECT_EQ(metrics.jobsCompleted, trace.size());
    EXPECT_GT(metrics.meanExecSeconds, 0.0);
    EXPECT_GE(metrics.meanQueueSeconds, 0.0);
    EXPECT_NEAR(metrics.meanTurnaroundSeconds,
                metrics.meanExecSeconds + metrics.meanQueueSeconds,
                1.0);
}

TEST(ClusterSim, ConventionalExecMatchesTrace)
{
    const auto trace = smallTrace();
    ClusterSimulator sim(smallCluster(false, true));
    const auto metrics = sim.run(trace);
    double mean_runtime = 0.0;
    for (const auto &job : trace)
        mean_runtime += job.runtimeSeconds;
    mean_runtime /= static_cast<double>(trace.size());
    EXPECT_NEAR(metrics.meanExecSeconds, mean_runtime, 1.0);
}

TEST(ClusterSim, HeteroDmrShortensExecution)
{
    const auto trace = smallTrace();
    const auto base =
        ClusterSimulator(smallCluster(false, true)).run(trace);
    const auto hdmr =
        ClusterSimulator(smallCluster(true, true)).run(trace);
    EXPECT_LT(hdmr.meanExecSeconds, base.meanExecSeconds);
    EXPECT_LT(hdmr.meanTurnaroundSeconds, base.meanTurnaroundSeconds);
    // Only <50 %-usage jobs accelerate; most eligible ones should.
    EXPECT_GT(hdmr.acceleratedFraction, 0.7);
}

TEST(ClusterSim, MarginAwareBeatsDefaultScheduler)
{
    const auto trace = smallTrace();
    const auto aware =
        ClusterSimulator(smallCluster(true, true)).run(trace);
    const auto unaware =
        ClusterSimulator(smallCluster(true, false)).run(trace);
    EXPECT_LT(aware.meanExecSeconds, unaware.meanExecSeconds * 1.001);
    EXPECT_GT(aware.acceleratedFraction,
              unaware.acceleratedFraction - 0.02);
}

TEST(ClusterSim, MoreNodesCutQueueing)
{
    const auto trace = smallTrace();
    auto small = smallCluster(false, false);
    auto big = small;
    big.nodes = 300;
    const auto base = ClusterSimulator(small).run(trace);
    const auto more = ClusterSimulator(big).run(trace);
    EXPECT_LT(more.meanQueueSeconds, base.meanQueueSeconds);
    EXPECT_NEAR(more.meanExecSeconds, base.meanExecSeconds, 1.0);
}

TEST(ClusterSim, OversizedJobsAreSkippedNotHung)
{
    auto trace = smallTrace(100, 13);
    trace[10].nodes = 100000; // larger than the system
    ClusterSimulator sim(smallCluster(false, false));
    const auto metrics = sim.run(trace);
    EXPECT_EQ(metrics.jobsCompleted, trace.size() - 1);
}

} // namespace
