/**
 * @file
 * Tests for the trace generators and the cluster scheduler: trace
 * calibration (load, usage classes), conservation invariants, EASY
 * backfill behaviour, margin-aware allocation, and the Fig. 17
 * orderings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "fault/fault.hh"
#include "sched/cluster_sim.hh"
#include "traces/job_trace.hh"
#include "traces/memory_usage.hh"
#include "util/status.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::sched;
using namespace hdmr::traces;

// --------------------------------------------------------------------
// Memory-usage traces (Fig. 1)
// --------------------------------------------------------------------

TEST(UsageTraces, FractionsMatchModel)
{
    UsageModel model;
    MemoryUsageTraceGenerator generator(model, 5);
    const auto jobs = generator.generate(5000);
    const auto analysis = analyzeUsage(jobs);
    EXPECT_EQ(analysis.jobs, 5000u);
    EXPECT_NEAR(analysis.fractionUnder50, model.under50Fraction, 0.03);
    EXPECT_NEAR(analysis.fractionUnder25, model.under25Fraction, 0.03);
}

TEST(UsageTraces, UtilizationWithinBounds)
{
    MemoryUsageTraceGenerator generator(UsageModel{}, 6);
    const auto job = generator.generateJob(16);
    EXPECT_EQ(job.utilization.size(), 16u);
    for (const auto &series : job.utilization)
        for (const double u : series) {
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0);
        }
    EXPECT_LE(job.peakUtilization(), 0.97);
}

TEST(UsageTraces, UsageClassDistribution)
{
    UsageModel model;
    MemoryUsageTraceGenerator generator(model, 7);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 20000; ++i)
        ++counts[generator.sampleUsageClass()];
    EXPECT_NEAR(counts[0] / 20000.0, 0.55, 0.02);
    EXPECT_NEAR((counts[0] + counts[1]) / 20000.0, 0.80, 0.02);
}

// --------------------------------------------------------------------
// Job traces (Grizzly)
// --------------------------------------------------------------------

TEST(JobTrace, CalibratedToTargetLoad)
{
    JobTraceModel model;
    model.numJobs = 20000;
    GrizzlyTraceGenerator generator(model, 9);
    const auto jobs = generator.generate();
    EXPECT_EQ(jobs.size(), 20000u);
    EXPECT_TRUE(std::is_sorted(jobs.begin(), jobs.end(),
                               [](const Job &a, const Job &b) {
                                   return a.submitSeconds <
                                          b.submitSeconds;
                               }));
    const double offered =
        traceNodeSeconds(jobs) /
        (model.systemNodes * model.spanSeconds);
    EXPECT_NEAR(offered, model.targetUtilization, 0.02);
    for (const auto &job : jobs) {
        EXPECT_GE(job.nodes, 1u);
        EXPECT_GE(job.walltimeSeconds, job.runtimeSeconds);
        EXPECT_LE(job.usageClass, 2u);
    }
}

// --------------------------------------------------------------------
// Cluster simulator
// --------------------------------------------------------------------

std::vector<Job>
smallTrace(std::size_t jobs = 6000, std::uint64_t seed = 11)
{
    JobTraceModel model;
    model.numJobs = jobs;
    model.spanSeconds = 14.0 * 86400;
    model.systemNodes = 256;
    GrizzlyTraceGenerator generator(model, seed);
    auto trace = generator.generate();
    // Clamp node counts to the small test system.
    for (auto &job : trace)
        job.nodes = std::min(job.nodes, 200u);
    return trace;
}

ClusterConfig
smallCluster(bool hdmr, bool aware)
{
    ClusterConfig config;
    config.nodes = 256;
    config.heteroDmr = hdmr;
    config.marginAware = aware;
    return config;
}

TEST(ClusterSim, AllJobsComplete)
{
    const auto trace = smallTrace();
    ClusterSimulator sim(smallCluster(false, false));
    const auto metrics = sim.run(trace);
    EXPECT_EQ(metrics.jobsCompleted, trace.size());
    EXPECT_GT(metrics.meanExecSeconds, 0.0);
    EXPECT_GE(metrics.meanQueueSeconds, 0.0);
    EXPECT_NEAR(metrics.meanTurnaroundSeconds,
                metrics.meanExecSeconds + metrics.meanQueueSeconds,
                1.0);
}

TEST(ClusterSim, ConventionalExecMatchesTrace)
{
    const auto trace = smallTrace();
    ClusterSimulator sim(smallCluster(false, true));
    const auto metrics = sim.run(trace);
    double mean_runtime = 0.0;
    for (const auto &job : trace)
        mean_runtime += job.runtimeSeconds;
    mean_runtime /= static_cast<double>(trace.size());
    EXPECT_NEAR(metrics.meanExecSeconds, mean_runtime, 1.0);
}

TEST(ClusterSim, HeteroDmrShortensExecution)
{
    const auto trace = smallTrace();
    const auto base =
        ClusterSimulator(smallCluster(false, true)).run(trace);
    const auto hdmr =
        ClusterSimulator(smallCluster(true, true)).run(trace);
    EXPECT_LT(hdmr.meanExecSeconds, base.meanExecSeconds);
    EXPECT_LT(hdmr.meanTurnaroundSeconds, base.meanTurnaroundSeconds);
    // Only <50 %-usage jobs accelerate; most eligible ones should.
    EXPECT_GT(hdmr.acceleratedFraction, 0.7);
}

TEST(ClusterSim, MarginAwareBeatsDefaultScheduler)
{
    const auto trace = smallTrace();
    const auto aware =
        ClusterSimulator(smallCluster(true, true)).run(trace);
    const auto unaware =
        ClusterSimulator(smallCluster(true, false)).run(trace);
    EXPECT_LT(aware.meanExecSeconds, unaware.meanExecSeconds * 1.001);
    EXPECT_GT(aware.acceleratedFraction,
              unaware.acceleratedFraction - 0.02);
}

TEST(ClusterSim, MoreNodesCutQueueing)
{
    const auto trace = smallTrace();
    auto small = smallCluster(false, false);
    auto big = small;
    big.nodes = 300;
    const auto base = ClusterSimulator(small).run(trace);
    const auto more = ClusterSimulator(big).run(trace);
    EXPECT_LT(more.meanQueueSeconds, base.meanQueueSeconds);
    EXPECT_NEAR(more.meanExecSeconds, base.meanExecSeconds, 1.0);
}

TEST(ClusterSim, OversizedJobsAreSkippedNotHung)
{
    auto trace = smallTrace(100, 13);
    trace[10].nodes = 100000; // larger than the system
    ClusterSimulator sim(smallCluster(false, false));
    const auto metrics = sim.run(trace);
    EXPECT_EQ(metrics.jobsCompleted, trace.size() - 1);
}

// --------------------------------------------------------------------
// Chaos-overlay schedule (drift campaigns feeding the cluster layer)
// --------------------------------------------------------------------

TEST(ClusterOverlay, ExcursionWindowRaisesUeHazard)
{
    const auto trace = smallTrace();
    auto config = smallCluster(true, true);
    config.faults.intensity = 1.0;
    config.faults.uncorrectablePerHour = 2.0e-4;
    config.faults.horizonSeconds = 14.0 * 86400;

    const auto cool = ClusterSimulator(config).run(trace);

    // One fleet-wide hot window covering the whole trace: every job
    // start sees the multiplied hazard.
    fault::FaultEvent window;
    window.kind = fault::FaultKind::kTemperatureExcursion;
    window.atSeconds = 0.0;
    window.durationSeconds = 30.0 * 86400;
    config.scheduleOverlay.push_back(window);
    config.excursionUeMultiplier = 8.0;
    const auto hot = ClusterSimulator(config).run(trace);

    EXPECT_EQ(hot.excursions, 1u);
    EXPECT_EQ(cool.excursions, 0u);
    EXPECT_GT(hot.jobKills, cool.jobKills);
    // Kills are recoverable: the machine still finishes the trace.
    EXPECT_EQ(hot.jobsCompleted + hot.jobsDropped, trace.size());
}

TEST(ClusterOverlay, DemotionsAreCountedAndSlowTheMachine)
{
    const auto trace = smallTrace();
    auto config = smallCluster(true, true);
    const auto plain = ClusterSimulator(config).run(trace);

    for (unsigned i = 0; i < 120; ++i) {
        fault::FaultEvent demotion;
        demotion.kind = fault::FaultKind::kGroupDemotion;
        demotion.atSeconds = 3600.0 * (i + 1);
        demotion.target = i * 2;
        config.scheduleOverlay.push_back(demotion);
    }
    const auto demoted = ClusterSimulator(config).run(trace);

    EXPECT_EQ(demoted.nodesDemoted, 120u);
    EXPECT_EQ(demoted.jobsCompleted + demoted.jobsDropped,
              trace.size());
    // Nodes pushed into slower margin groups can only hurt.
    EXPECT_GT(demoted.meanTurnaroundSeconds,
              plain.meanTurnaroundSeconds);
}

TEST(ClusterOverlay, OverlayIsFingerprintedIntoTheConfigDigest)
{
    auto config = smallCluster(true, true);
    const std::uint64_t bare = ClusterSimulator(config).configDigest();

    fault::FaultEvent window;
    window.kind = fault::FaultKind::kTemperatureExcursion;
    window.atSeconds = 7200.0;
    window.durationSeconds = 3600.0;
    config.scheduleOverlay.push_back(window);
    const std::uint64_t overlaid =
        ClusterSimulator(config).configDigest();
    EXPECT_NE(bare, overlaid);

    // ... and so is the excursion multiplier the overlay arms.
    auto hotter = config;
    hotter.excursionUeMultiplier = 8.0;
    EXPECT_NE(overlaid, ClusterSimulator(hotter).configDigest());
}

TEST(ClusterOverlay, SnapshotNeverResumesUnderForeignOverlay)
{
    const auto trace = smallTrace();
    auto config = smallCluster(true, true);
    fault::FaultEvent window;
    window.kind = fault::FaultKind::kTemperatureExcursion;
    window.atSeconds = 86400.0;
    window.durationSeconds = 6.0 * 3600;
    config.scheduleOverlay.push_back(window);

    // Interrupt mid-run and capture the state image.
    std::vector<std::uint8_t> image;
    RunOptions options;
    options.digestEverySeconds = 43200.0;
    options.stopAfterSeconds = 3.0 * 86400;
    options.snapshotSink =
        [&](const std::vector<std::uint8_t> &state) { image = state; };
    ClusterSimulator stopped(config);
    const auto partial = stopped.run(trace, options);
    ASSERT_FALSE(partial.completed);
    ASSERT_FALSE(image.empty());

    // A simulator armed with a different drift realization must
    // reject the image outright.
    auto other = config;
    other.scheduleOverlay[0].atSeconds = 2.0 * 86400;
    ClusterSimulator foreign(other);
    const util::Status foreign_status =
        foreign.restoreState(image, trace);
    EXPECT_EQ(foreign_status.code(),
              util::StatusCode::kFailedPrecondition)
        << foreign_status.toString();
    EXPECT_FALSE(foreign_status.message().empty());

    // The matching configuration restores and finishes with exactly
    // the metrics and digest trail of an uninterrupted run.
    RunOptions straight_options;
    straight_options.digestEverySeconds = 43200.0;
    const auto straight =
        ClusterSimulator(config).run(trace, straight_options);
    ClusterSimulator resumed_sim(config);
    const util::Status restored =
        resumed_sim.restoreState(image, trace);
    ASSERT_TRUE(restored.ok()) << restored.message();
    const auto resumed = resumed_sim.resume(straight_options);
    ASSERT_TRUE(resumed.completed);
    EXPECT_TRUE(metricsIdentical(straight.metrics, resumed.metrics));
    EXPECT_EQ(snapshot::DigestTrail::firstDivergence(straight.digests,
                                                     resumed.digests),
              std::nullopt);
}

} // namespace
