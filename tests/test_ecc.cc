/**
 * @file
 * Tests for the ECC library: GF(256) field axioms, Reed-Solomon
 * round-trip/correction/detection properties, the Bamboo block codec
 * with address folding, and detection-only semantics that Hetero-DMR
 * relies on.  Property-style sweeps use parameterized gtest.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ecc/bamboo.hh"
#include "ecc/error_inject.hh"
#include "ecc/gf256.hh"
#include "ecc/reed_solomon.hh"
#include "util/rng.hh"

namespace
{

using namespace hdmr::ecc;
using hdmr::util::Rng;

// --------------------------------------------------------------------
// GF(256)
// --------------------------------------------------------------------

TEST(Gf256, AdditionIsXorAndSelfInverse)
{
    EXPECT_EQ(Gf256::add(0x57, 0x83), 0x57 ^ 0x83);
    for (unsigned a = 0; a < 256; ++a)
        EXPECT_EQ(Gf256::add(static_cast<GfElem>(a),
                             static_cast<GfElem>(a)), 0);
}

TEST(Gf256, MultiplicationIdentityAndZero)
{
    for (unsigned a = 0; a < 256; ++a) {
        EXPECT_EQ(Gf256::mul(static_cast<GfElem>(a), 1),
                  static_cast<GfElem>(a));
        EXPECT_EQ(Gf256::mul(static_cast<GfElem>(a), 0), 0);
    }
}

TEST(Gf256, MultiplicationCommutesAndAssociates)
{
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const auto a = static_cast<GfElem>(rng.uniformInt(0, 255));
        const auto b = static_cast<GfElem>(rng.uniformInt(0, 255));
        const auto c = static_cast<GfElem>(rng.uniformInt(0, 255));
        EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
        EXPECT_EQ(Gf256::mul(Gf256::mul(a, b), c),
                  Gf256::mul(a, Gf256::mul(b, c)));
    }
}

TEST(Gf256, DistributesOverAddition)
{
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        const auto a = static_cast<GfElem>(rng.uniformInt(0, 255));
        const auto b = static_cast<GfElem>(rng.uniformInt(0, 255));
        const auto c = static_cast<GfElem>(rng.uniformInt(0, 255));
        EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)),
                  Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
    }
}

TEST(Gf256, InverseIsTwoSided)
{
    for (unsigned a = 1; a < 256; ++a) {
        const auto inv = Gf256::inv(static_cast<GfElem>(a));
        EXPECT_EQ(Gf256::mul(static_cast<GfElem>(a), inv), 1);
    }
}

TEST(Gf256, ExpLogRoundTrip)
{
    for (int p = 0; p < 255; ++p)
        EXPECT_EQ(Gf256::logAlpha(Gf256::expAlpha(p)), p);
    EXPECT_EQ(Gf256::expAlpha(255), Gf256::expAlpha(0));
    EXPECT_EQ(Gf256::expAlpha(-1), Gf256::expAlpha(254));
}

TEST(Gf256, PowMatchesRepeatedMul)
{
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const auto a = static_cast<GfElem>(rng.uniformInt(1, 255));
        const int n = static_cast<int>(rng.uniformInt(0, 12));
        GfElem expected = 1;
        for (int j = 0; j < n; ++j)
            expected = Gf256::mul(expected, a);
        EXPECT_EQ(Gf256::pow(a, n), expected);
    }
}

// --------------------------------------------------------------------
// Reed-Solomon
// --------------------------------------------------------------------

std::vector<GfElem>
randomMessage(std::size_t k, Rng &rng)
{
    std::vector<GfElem> msg(k);
    for (auto &m : msg)
        m = static_cast<GfElem>(rng.uniformInt(0, 255));
    return msg;
}

std::vector<GfElem>
makeCodeword(const ReedSolomon &rs, const std::vector<GfElem> &msg)
{
    auto cw = msg;
    const auto parity = rs.encode(msg);
    cw.insert(cw.end(), parity.begin(), parity.end());
    return cw;
}

TEST(ReedSolomon, CleanCodewordHasZeroSyndromes)
{
    ReedSolomon rs(64, 8);
    Rng rng(10);
    for (int trial = 0; trial < 200; ++trial) {
        const auto cw = makeCodeword(rs, randomMessage(64, rng));
        EXPECT_FALSE(rs.detect(cw));
    }
}

TEST(ReedSolomon, DetectsAnySingleSymbolError)
{
    ReedSolomon rs(64, 8);
    Rng rng(11);
    auto cw = makeCodeword(rs, randomMessage(64, rng));
    for (std::size_t pos = 0; pos < cw.size(); ++pos) {
        auto bad = cw;
        bad[pos] ^= 0x5a;
        EXPECT_TRUE(rs.detect(bad)) << "position " << pos;
    }
}

/** Correction property sweep over the number of injected errors. */
class RsCorrection : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RsCorrection, CorrectsUpToTErrors)
{
    const unsigned num_errors = GetParam();
    ReedSolomon rs(64, 8);
    Rng rng(100 + num_errors);
    for (int trial = 0; trial < 100; ++trial) {
        const auto clean = makeCodeword(rs, randomMessage(64, rng));
        auto bad = clean;
        // Corrupt `num_errors` distinct positions.
        std::vector<std::size_t> picked;
        while (picked.size() < num_errors) {
            const auto pos = rng.uniformInt(0, bad.size() - 1);
            bool dup = false;
            for (auto p : picked)
                dup |= p == pos;
            if (!dup)
                picked.push_back(pos);
        }
        for (auto pos : picked)
            bad[pos] ^= static_cast<GfElem>(rng.uniformInt(1, 255));

        const auto result = rs.correct(bad);
        ASSERT_EQ(result.status, DecodeStatus::kCorrected);
        EXPECT_EQ(bad, clean);
        EXPECT_EQ(result.correctedPositions.size(), num_errors);
    }
}

INSTANTIATE_TEST_SUITE_P(OneToFourErrors, RsCorrection,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(ReedSolomon, FiveErrorsNeverSilentlyMiscorrect)
{
    ReedSolomon rs(64, 8);
    Rng rng(12);
    int corrected_wrong = 0;
    for (int trial = 0; trial < 300; ++trial) {
        const auto clean = makeCodeword(rs, randomMessage(64, rng));
        auto bad = clean;
        for (std::size_t e = 0; e < 5; ++e)
            bad[rng.uniformInt(0, bad.size() - 1)] ^=
                static_cast<GfElem>(rng.uniformInt(1, 255));
        auto copy = bad;
        const auto result = rs.correct(copy);
        // Beyond-capability errors must never be reported as a clean
        // *incorrect* correction back to the original message region.
        if (result.status == DecodeStatus::kCorrected && copy != clean)
            ++corrected_wrong;
    }
    // RS(72,64) with 5 random errors miscorrects with probability
    // ~ 1e-3; what must NEVER happen is high-rate silent miscorrection.
    EXPECT_LE(corrected_wrong, 5);
}

TEST(ReedSolomon, CodewordUnchangedOnUncorrectable)
{
    ReedSolomon rs(64, 8);
    Rng rng(13);
    const auto clean = makeCodeword(rs, randomMessage(64, rng));
    for (int trial = 0; trial < 100; ++trial) {
        auto bad = clean;
        for (std::size_t e = 0; e < 20; ++e)
            bad[rng.uniformInt(0, bad.size() - 1)] ^=
                static_cast<GfElem>(rng.uniformInt(1, 255));
        auto attempt = bad;
        const auto result = rs.correct(attempt);
        if (result.status == DecodeStatus::kUncorrectable) {
            EXPECT_EQ(attempt, bad);
        }
    }
}

TEST(ReedSolomon, ForbiddenRangeTurnsCorrectionIntoDetection)
{
    ReedSolomon rs(72, 8);
    Rng rng(14);
    const auto clean = makeCodeword(rs, randomMessage(72, rng));
    // Inject an error inside the forbidden window [64, 72).
    auto bad = clean;
    bad[66] ^= 0x31;
    const auto result = rs.correct(bad, 64, 72);
    EXPECT_EQ(result.status, DecodeStatus::kDetectedOnly);
    EXPECT_EQ(bad[66], clean[66] ^ 0x31) << "data must stay untouched";
}

TEST(ReedSolomon, ParityOnlyErrorsAreCorrectable)
{
    ReedSolomon rs(64, 8);
    Rng rng(15);
    const auto clean = makeCodeword(rs, randomMessage(64, rng));
    auto bad = clean;
    bad[64] ^= 0xff; // first parity symbol
    bad[71] ^= 0x01; // last parity symbol
    const auto result = rs.correct(bad);
    EXPECT_EQ(result.status, DecodeStatus::kCorrected);
    EXPECT_EQ(bad, clean);
}

// --------------------------------------------------------------------
// Bamboo block codec
// --------------------------------------------------------------------

Block
randomBlock(Rng &rng)
{
    Block b;
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    return b;
}

TEST(Bamboo, EncodeDecodeCleanRoundTrip)
{
    BambooCodec codec;
    Rng rng(20);
    for (int trial = 0; trial < 100; ++trial) {
        const auto data = randomBlock(rng);
        const std::uint64_t addr = rng.next();
        auto coded = codec.encode(data, addr);
        EXPECT_EQ(codec.decodeDetectOnly(coded, addr).status,
                  DecodeStatus::kClean);
        EXPECT_EQ(codec.decodeCorrecting(coded, addr).status,
                  DecodeStatus::kClean);
        EXPECT_EQ(coded.data, data);
    }
}

TEST(Bamboo, DetectOnlyFlagsButNeverModifies)
{
    BambooCodec codec;
    Rng rng(21);
    const auto data = randomBlock(rng);
    auto coded = codec.encode(data, 0x1000);
    corruptDataByte(coded, 5, 0x80);
    const auto snapshot = coded;
    const auto result = codec.decodeDetectOnly(coded, 0x1000);
    EXPECT_EQ(result.status, DecodeStatus::kDetectedOnly);
    EXPECT_EQ(coded.data, snapshot.data);
    EXPECT_EQ(coded.parity, snapshot.parity);
}

TEST(Bamboo, DetectOnlyCatchesAllPatternsUpToEightBytes)
{
    BambooCodec codec;
    Rng rng(22);
    for (unsigned width = 1; width <= 8; ++width) {
        for (int trial = 0; trial < 50; ++trial) {
            auto coded = codec.encode(randomBlock(rng), 0xdead000);
            corruptBytes(coded, width, rng);
            EXPECT_TRUE(
                codec.decodeDetectOnly(coded, 0xdead000).errorDetected())
                << "width " << width;
        }
    }
}

TEST(Bamboo, DetectsWideBlockErrorsInPractice)
{
    BambooCodec codec;
    Rng rng(23);
    int undetected = 0;
    for (int trial = 0; trial < 500; ++trial) {
        auto coded = codec.encode(randomBlock(rng), 0xbeef00);
        injectPattern(coded, ErrorPattern::kWideBlock, rng);
        undetected +=
            !codec.decodeDetectOnly(coded, 0xbeef00).errorDetected();
    }
    // Escape probability is 2^-64; seeing even one in 500 would be
    // astronomically unlikely.
    EXPECT_EQ(undetected, 0);
}

TEST(Bamboo, AddressMismatchIsDetected)
{
    BambooCodec codec;
    Rng rng(24);
    for (int trial = 0; trial < 100; ++trial) {
        const auto data = randomBlock(rng);
        const std::uint64_t addr = rng.next();
        std::uint64_t wrong = rng.next();
        if (wrong == addr)
            wrong ^= 0x40;
        const auto coded = codec.encode(data, addr);
        EXPECT_TRUE(
            codec.decodeDetectOnly(coded, wrong).errorDetected());
    }
}

TEST(Bamboo, SingleBitAddressErrorDetected)
{
    BambooCodec codec;
    Rng rng(25);
    const auto coded = codec.encode(randomBlock(rng), 0x123456789abcull);
    for (int bit = 0; bit < 48; ++bit) {
        const std::uint64_t wrong = 0x123456789abcull ^ (1ull << bit);
        EXPECT_TRUE(codec.decodeDetectOnly(coded, wrong).errorDetected())
            << "address bit " << bit;
    }
}

TEST(Bamboo, CorrectingModeRepairsUpToFourBytes)
{
    BambooCodec codec;
    Rng rng(26);
    for (unsigned width = 1; width <= 4; ++width) {
        for (int trial = 0; trial < 50; ++trial) {
            const auto data = randomBlock(rng);
            auto coded = codec.encode(data, 0x77);
            corruptBytes(coded, width, rng);
            const auto result = codec.decodeCorrecting(coded, 0x77);
            ASSERT_EQ(result.status, DecodeStatus::kCorrected);
            EXPECT_EQ(coded.data, data);
            EXPECT_EQ(result.correctedSymbols, width);
        }
    }
}

TEST(Bamboo, CorrectingModeNeverAppliesAddressCorrections)
{
    BambooCodec codec;
    Rng rng(27);
    // A pure address mismatch looks like errors in the virtual symbols;
    // the decoder must refuse to "correct" and must not corrupt data.
    const auto data = randomBlock(rng);
    auto coded = codec.encode(data, 0xaaaa);
    const auto result = codec.decodeCorrecting(coded, 0xaaab);
    EXPECT_NE(result.status, DecodeStatus::kCorrected);
    EXPECT_EQ(coded.data, data);
}

TEST(Bamboo, SameParityForOriginalAndBroadcastCopy)
{
    // Section III-C: original and copy share ECC byte values because the
    // detect-only optimization changes decode, not encode.  Original and
    // copy sit at the same channel offset (same folded address), so one
    // broadcast write covers both.
    BambooCodec codec;
    Rng rng(28);
    const auto data = randomBlock(rng);
    const auto original = codec.encode(data, 0x4000);
    const auto copy = codec.encode(data, 0x4000);
    EXPECT_EQ(original.parity, copy.parity);
}

TEST(Bamboo, EscapeProbabilityMatchesPaperConstant)
{
    // The paper: one SDC per 2^64 = 18446744073709600000 detected 8B+
    // errors (quoted there with rounding in the last digits).
    EXPECT_DOUBLE_EQ(BambooCodec::escapeProbability8BPlus(),
                     1.0 / 18446744073709551616.0);
}

TEST(ErrorInject, WideBlockChangesExactlyTheTouchedBytes)
{
    // injectPattern promises every touched byte actually changes; for
    // kWideBlock that means 9-40 distinct bytes differ from the clean
    // codeword, and detection-only Bamboo must flag the block.
    BambooCodec codec;
    Rng rng(29);
    for (int trial = 0; trial < 200; ++trial) {
        auto coded = codec.encode(randomBlock(rng), 0xabc00);
        const auto snapshot = coded;
        const unsigned touched =
            injectPattern(coded, ErrorPattern::kWideBlock, rng);
        EXPECT_GE(touched, 9u);
        EXPECT_LE(touched, 40u);

        unsigned changed = 0;
        for (std::size_t i = 0; i < BambooCodec::kDataBytes; ++i)
            changed += coded.data[i] != snapshot.data[i];
        for (std::size_t i = 0; i < BambooCodec::kParityBytes; ++i)
            changed += coded.parity[i] != snapshot.parity[i];
        EXPECT_EQ(changed, touched);

        EXPECT_TRUE(
            codec.decodeDetectOnly(coded, 0xabc00).errorDetected());
    }
}

// --------------------------------------------------------------------
// Error-injection edge cases
// --------------------------------------------------------------------

TEST(ErrorInject, ZeroErrorBurstIsNoOpAndConsumesNoRandomness)
{
    BambooCodec codec;
    Rng rng(30);
    auto coded = codec.encode(randomBlock(rng), 0x500);
    const auto snapshot = coded;

    Rng burst_rng(77);
    Rng reference_rng(77);
    EXPECT_EQ(corruptBytes(coded, 0, burst_rng), 0u);
    EXPECT_EQ(coded.data, snapshot.data);
    EXPECT_EQ(coded.parity, snapshot.parity);
    // The generator must not have advanced: its next draws match a
    // twin seeded identically that never saw the call.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(burst_rng.next(), reference_rng.next());
    EXPECT_EQ(codec.decodeDetectOnly(coded, 0x500).status,
              DecodeStatus::kClean);
}

TEST(ErrorInject, FullCodewordCorruptionTouchesAllStoredBytes)
{
    BambooCodec codec;
    Rng rng(31);
    constexpr unsigned kAll =
        BambooCodec::kDataBytes + BambooCodec::kParityBytes;
    for (int trial = 0; trial < 50; ++trial) {
        const auto data = randomBlock(rng);
        auto coded = codec.encode(data, 0x600);
        const auto snapshot = coded;
        EXPECT_EQ(corruptBytes(coded, kAll, rng), kAll);

        // Every single stored byte must differ - "distinct" positions
        // with guaranteed change means 72 injections cover the block.
        for (std::size_t i = 0; i < BambooCodec::kDataBytes; ++i)
            EXPECT_NE(coded.data[i], snapshot.data[i]) << "data " << i;
        for (std::size_t i = 0; i < BambooCodec::kParityBytes; ++i)
            EXPECT_NE(coded.parity[i], snapshot.parity[i])
                << "parity " << i;

        EXPECT_TRUE(
            codec.decodeDetectOnly(coded, 0x600).errorDetected());
        // Way beyond t=4: the correcting decoder must refuse rather
        // than fabricate data.
        const auto result = codec.decodeCorrecting(coded, 0x600);
        EXPECT_NE(result.status, DecodeStatus::kCorrected);
    }
}

TEST(ErrorInject, OverlappingInjectionsComposeByXor)
{
    BambooCodec codec;
    Rng rng(32);
    const auto data = randomBlock(rng);
    auto coded = codec.encode(data, 0x700);

    // Two hits on the same symbol with the same mask cancel out: the
    // block is bit-identical to clean and must decode as clean.
    corruptDataByte(coded, 9, 0x3c);
    corruptDataByte(coded, 9, 0x3c);
    EXPECT_EQ(coded.data, data);
    EXPECT_EQ(codec.decodeDetectOnly(coded, 0x700).status,
              DecodeStatus::kClean);

    // Different masks leave the XOR residue: one corrupted symbol,
    // detected and then corrected back to the truth.
    corruptDataByte(coded, 9, 0x3c);
    corruptDataByte(coded, 9, 0xc3);
    EXPECT_EQ(coded.data[9], data[9] ^ (0x3c ^ 0xc3));
    EXPECT_TRUE(codec.decodeDetectOnly(coded, 0x700).errorDetected());
    const auto result = codec.decodeCorrecting(coded, 0x700);
    EXPECT_EQ(result.status, DecodeStatus::kCorrected);
    EXPECT_EQ(result.correctedSymbols, 1u);
    EXPECT_EQ(coded.data, data);

    // Overlapping a data hit with a parity hit on the same trial:
    // still two distinct symbols, still fully recoverable.
    corruptDataByte(coded, 40, 0x01);
    corruptParityByte(coded, 3, 0x80);
    EXPECT_EQ(codec.decodeCorrecting(coded, 0x700).status,
              DecodeStatus::kCorrected);
    EXPECT_EQ(coded.data, data);
}

TEST(ErrorInject, DecodeOfEncodeIsIdentityUnderBoundedCorruption)
{
    // Property sweep: for random payloads, addresses and burst widths
    // within the codec's envelope, decode(encode(x)) == x - exactly
    // (width <= 4, corrected) or vacuously (width 5-8, detected and
    // data left untouched for the ladder to re-read).  Widths past the
    // t=4 bound may miscorrect with probability ~1e-3 per decode (the
    // SDC channel the verify oracle audits); that must stay rare.
    BambooCodec codec;
    Rng rng(33);
    int miscorrections = 0;
    for (int trial = 0; trial < 400; ++trial) {
        const auto data = randomBlock(rng);
        const std::uint64_t addr = rng.next() & 0xffff'ffff'ffffull;
        auto coded = codec.encode(data, addr);
        const auto width =
            static_cast<unsigned>(rng.uniformInt(0, 8));
        corruptBytes(coded, width, rng);
        const auto corrupted = coded;

        const auto result = codec.decodeCorrecting(coded, addr);
        if (width == 0) {
            EXPECT_EQ(result.status, DecodeStatus::kClean);
            EXPECT_EQ(coded.data, data);
        } else if (width <= 4) {
            ASSERT_EQ(result.status, DecodeStatus::kCorrected);
            EXPECT_EQ(coded.data, data) << "width " << width;
        } else if (result.status == DecodeStatus::kCorrected) {
            // Beyond-capability miscorrection: by construction the
            // result cannot be the original (distance 5+ from it).
            EXPECT_NE(coded.data, data) << "width " << width;
            ++miscorrections;
        } else {
            EXPECT_EQ(coded.data, corrupted.data)
                << "refused decode must not touch data";
        }
    }
    EXPECT_LE(miscorrections, 3);
}

} // namespace
