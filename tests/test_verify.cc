/**
 * @file
 * Tests for the SDC containment audit subsystem (src/verify): the
 * escape sampler's null-space construction and importance weights, the
 * shadow-memory oracle's classification taxonomy, and the audit
 * engine's estimator and snapshot/resume determinism.
 */

#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "ecc/bamboo.hh"
#include "fault/fault.hh"
#include "snapshot/serializer.hh"
#include "util/rng.hh"
#include "util/status.hh"
#include "verify/audit.hh"
#include "verify/escape_sampler.hh"
#include "verify/sdc_oracle.hh"

namespace
{

using namespace hdmr;
using verify::AccessClass;

// ---------------------------------------------------------------------
// EscapeSampler
// ---------------------------------------------------------------------

TEST(EscapeSampler, NullSpaceDrawsAreInvisibleToDetection)
{
    // Constructed null-space vectors are codewords: applying one to a
    // valid coded block must leave every syndrome zero, so the
    // detection-only decode reports a clean read even though the data
    // is corrupt.  This is the silent-escape mechanism made concrete.
    ecc::BambooCodec codec;
    verify::EscapeSampler sampler(codec, 0.5);
    util::Rng rng(7);

    ecc::Block data{};
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 37 + 5);

    unsigned corrupting_draws = 0;
    for (unsigned trial = 0; trial < 50; ++trial) {
        const unsigned width =
            static_cast<unsigned>(rng.uniformInt(9, 40));
        const verify::WideErrorDraw draw =
            sampler.sampleNullSpace(width, rng);
        ASSERT_EQ(draw.slots.size(), width);
        ASSERT_TRUE(draw.fromNullSpace);

        ecc::CodedBlock coded = codec.encode(data, 0x1000 + trial * 64);
        const ecc::CodedBlock pristine = coded;
        draw.applyTo(coded);

        const ecc::BlockDecodeResult result =
            codec.decodeDetectOnly(coded, 0x1000 + trial * 64);
        EXPECT_FALSE(result.errorDetected())
            << "null-space vector produced non-zero syndromes";

        if (coded.data != pristine.data ||
            coded.parity != pristine.parity) {
            ++corrupting_draws;
            EXPECT_TRUE(draw.nonZero());
        }
    }
    // The all-zero codeword has probability 256^-(w-8); essentially
    // every draw must be a real corruption.
    EXPECT_GE(corrupting_draws, 49u);
}

TEST(EscapeSampler, NominalDrawsAreAlwaysDetected)
{
    // A uniform nonzero-mask wide error is a codeword with probability
    // 2^-64: every nominal-branch draw we can ever generate must be
    // detected.
    ecc::BambooCodec codec;
    verify::EscapeSampler sampler(codec, 0.0); // nominal branch only
    util::Rng rng(11);

    ecc::Block data{};
    for (unsigned trial = 0; trial < 200; ++trial) {
        const unsigned width =
            static_cast<unsigned>(rng.uniformInt(9, 40));
        const verify::WideErrorDraw draw = sampler.sample(width, rng);
        EXPECT_FALSE(draw.fromNullSpace);
        // Nominal full-support draws carry weight 1/(1 - lambda) = 1.
        EXPECT_DOUBLE_EQ(draw.importanceWeight, 1.0);

        ecc::CodedBlock coded = codec.encode(data, trial);
        draw.applyTo(coded);
        EXPECT_TRUE(
            codec.decodeDetectOnly(coded, trial).errorDetected());
    }
}

TEST(EscapeSampler, WeightedEscapeRateMatchesTheoreticalBound)
{
    // The whole point of the importance sampler: the weighted escape
    // indicator averaged over wide draws is an unbiased estimator of
    // the nominal escape probability 2^-64.  With a few thousand
    // draws the estimate must land within a modest factor.
    ecc::BambooCodec codec;
    verify::EscapeSampler sampler(codec, 0.5);
    util::Rng rng(13);
    ecc::Block data{};

    double escape_weight = 0.0;
    const unsigned kDraws = 4000;
    for (unsigned trial = 0; trial < kDraws; ++trial) {
        const unsigned width =
            static_cast<unsigned>(rng.uniformInt(9, 40));
        const verify::WideErrorDraw draw = sampler.sample(width, rng);
        ecc::CodedBlock coded = codec.encode(data, trial);
        draw.applyTo(coded);
        const bool escaped =
            !codec.decodeDetectOnly(coded, trial).errorDetected() &&
            draw.nonZero();
        if (escaped)
            escape_weight += draw.importanceWeight;
    }
    const double measured = escape_weight / kDraws;
    const double expected = ecc::BambooCodec::escapeProbability8BPlus();
    EXPECT_GT(measured, expected / 1.5);
    EXPECT_LT(measured, expected * 1.5);
}

// ---------------------------------------------------------------------
// ShadowMemoryOracle
// ---------------------------------------------------------------------

TEST(ShadowMemoryOracle, PayloadIsDeterministicInSeedAndAddress)
{
    ecc::BambooCodec codec;
    verify::OracleConfig config;
    config.payloadSeed = 0xabc;
    verify::ShadowMemoryOracle oracle(codec, config);
    verify::ShadowMemoryOracle again(codec, config);

    EXPECT_EQ(oracle.payloadFor(0x40), again.payloadFor(0x40));
    EXPECT_NE(oracle.payloadFor(0x40), oracle.payloadFor(0x80));

    verify::OracleConfig other = config;
    other.payloadSeed = 0xdef;
    verify::ShadowMemoryOracle reseeded(codec, other);
    EXPECT_NE(oracle.payloadFor(0x40), reseeded.payloadFor(0x40));
}

TEST(ShadowMemoryOracle, NarrowErrorsAreDetectedAndRecovered)
{
    // Any <= 8-symbol pattern is detected with certainty, and with a
    // pristine original the first ladder rung always recovers.
    ecc::BambooCodec codec;
    verify::OracleConfig config;
    config.retryAttempts = 2;
    verify::ShadowMemoryOracle oracle(codec, config);
    util::Rng rng(17);
    verify::OracleCounters counters;

    const ecc::ErrorPattern patterns[] = {
        ecc::ErrorPattern::kSingleBit,
        ecc::ErrorPattern::kSingleByte,
        ecc::ErrorPattern::kMultiByte,
    };
    for (unsigned trial = 0; trial < 300; ++trial) {
        const auto outcome = oracle.classifyPattern(
            trial * 64, patterns[trial % 3], 1.0, counters, rng);
        EXPECT_EQ(outcome.cls, AccessClass::kDetectedRecovered);
        EXPECT_EQ(outcome.attemptsUsed, 0u);
    }
    EXPECT_EQ(counters.raw[static_cast<unsigned>(
                  AccessClass::kDetectedRecovered)],
              300u);
    EXPECT_EQ(counters.unclassified, 0u);
    EXPECT_EQ(counters.retryAttempts, 0u);
}

TEST(ShadowMemoryOracle, ConstructedEscapeIsClassifiedAsSilent)
{
    ecc::BambooCodec codec;
    verify::EscapeSampler sampler(codec, 0.5);
    verify::ShadowMemoryOracle oracle(codec, verify::OracleConfig{});
    util::Rng rng(19);
    verify::OracleCounters counters;

    unsigned escapes = 0;
    for (unsigned trial = 0; trial < 50; ++trial) {
        const verify::WideErrorDraw draw =
            sampler.sampleNullSpace(12, rng);
        if (!draw.nonZero())
            continue;
        const auto outcome =
            oracle.classifyWide(trial * 64, draw, 1.0, counters, rng);
        EXPECT_EQ(outcome.cls, AccessClass::kSilentEscape);
        ++escapes;
    }
    EXPECT_GT(escapes, 0u);
    EXPECT_EQ(counters.raw[static_cast<unsigned>(
                  AccessClass::kSilentEscape)],
              escapes);
    EXPECT_EQ(counters.nullSpaceDraws, counters.wideDraws);
    EXPECT_EQ(counters.unclassified, 0u);
}

TEST(ShadowMemoryOracle, FlakyRecoveryConsumesLadderRetries)
{
    // A flaky original: 90 % of spec re-reads are hit, half of those
    // by an uncorrectable burst.  Rungs must actually be walked, some
    // recoveries must owe their success to a retry, and exhausting
    // every rung must surface as a detected uncorrectable error.
    ecc::BambooCodec codec;
    verify::OracleConfig config;
    config.retryAttempts = 3;
    config.originalErrorProbability = 0.9;
    verify::ShadowMemoryOracle oracle(codec, config);
    util::Rng rng(23);
    verify::OracleCounters counters;

    unsigned recovered = 0, ue = 0;
    for (unsigned trial = 0; trial < 200; ++trial) {
        const auto outcome = oracle.classifyPattern(
            trial * 64, ecc::ErrorPattern::kMultiByte, 1.0, counters,
            rng);
        ASSERT_TRUE(outcome.cls == AccessClass::kDetectedRecovered ||
                    outcome.cls == AccessClass::kDetectedUe);
        recovered += outcome.cls == AccessClass::kDetectedRecovered;
        ue += outcome.cls == AccessClass::kDetectedUe;
    }
    // P(rung fails) = 0.45, so with 4 rungs nearly every access still
    // recovers, a handful escalate, and retries are commonplace.
    EXPECT_GT(recovered, 150u);
    EXPECT_GT(ue, 0u);
    EXPECT_GT(counters.retryAttempts, 0u);
    EXPECT_GT(counters.retriedRecoveries, 0u);
    EXPECT_EQ(counters.unclassified, 0u);
    EXPECT_EQ(counters.rawTotal(), 200u);
}

TEST(OracleCounters, SerializationRoundTrips)
{
    verify::OracleCounters counters;
    counters.count(AccessClass::kDetectedRecovered, 1.0);
    counters.count(AccessClass::kSilentEscape, 5.4e-20);
    counters.addBulkClean(123456789);
    counters.wideDraws = 17;
    counters.nullSpaceDraws = 9;
    counters.wideWeight = 3.25;
    counters.retryAttempts = 4;
    counters.retriedRecoveries = 2;
    counters.miscorrections = 1;
    counters.countEscapePageClass(false, 1.0);
    counters.countEscapePageClass(true, 5.4e-20);

    snapshot::Serializer out;
    counters.save(out);
    snapshot::Deserializer in(out.data());
    verify::OracleCounters restored;
    restored.restore(in);
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(in.remaining(), 0u);

    EXPECT_EQ(0, std::memcmp(&counters, &restored, sizeof(counters)));
}

// ---------------------------------------------------------------------
// SdcAudit
// ---------------------------------------------------------------------

verify::SdcAuditConfig
smallAuditConfig()
{
    verify::SdcAuditConfig config;
    config.seed = 0x51;
    config.modules = 2;
    config.hours = 3;
    config.accessesPerHour = 5.0e7;
    config.overshootSteps = 2;
    config.wideOversample = 0.3;
    config.escapeLambda = 0.5;
    return config;
}

TEST(SdcAudit, ClassifiesEveryModeledAccess)
{
    verify::SdcAudit audit(smallAuditConfig());
    audit.run();
    const verify::SdcAuditReport report = audit.report();

    EXPECT_EQ(report.total.unclassified, 0u);
    // Raw classified accesses must exactly cover the modeled volume.
    const auto expected = static_cast<std::uint64_t>(5.0e7) * 2 * 3;
    EXPECT_EQ(report.total.rawTotal(), expected);
    // Errors occurred (the fleet runs two steps past stable).
    EXPECT_GT(report.detectedErrors, 0u);
    EXPECT_GT(report.total.wideDraws, 0u);
    EXPECT_EQ(report.modeledHours, 6.0);
}

TEST(SdcAudit, SameSeedReproducesBitIdenticalCounters)
{
    verify::SdcAudit a(smallAuditConfig());
    verify::SdcAudit b(smallAuditConfig());
    a.run();
    b.run();

    snapshot::Serializer sa, sb;
    a.saveState(sa);
    b.saveState(sb);
    EXPECT_EQ(sa.data(), sb.data());
}

TEST(SdcAudit, SnapshotResumeIsBitIdentical)
{
    // Run to completion in one go; run half, snapshot, restore into a
    // fresh audit, finish.  Final serialized states must be identical
    // byte for byte.
    verify::SdcAudit straight(smallAuditConfig());
    straight.run();

    verify::SdcAudit first(smallAuditConfig());
    for (unsigned i = 0; i < 3; ++i)
        first.step();
    snapshot::Serializer mid;
    first.saveState(mid);

    verify::SdcAudit resumed(smallAuditConfig());
    snapshot::Deserializer in(mid.data());
    ASSERT_TRUE(resumed.restoreState(in));
    EXPECT_EQ(in.remaining(), 0u);
    EXPECT_EQ(resumed.stepsDone(), 3u);
    resumed.run();

    snapshot::Serializer sa, sb;
    straight.saveState(sa);
    resumed.saveState(sb);
    EXPECT_EQ(sa.data(), sb.data());
}

TEST(SdcAudit, SnapshotRejectsDifferentCampaign)
{
    verify::SdcAudit source(smallAuditConfig());
    source.step();
    snapshot::Serializer out;
    source.saveState(out);

    verify::SdcAuditConfig other = smallAuditConfig();
    other.seed = 0x52;
    verify::SdcAudit target(other);
    snapshot::Deserializer in(out.data());
    EXPECT_FALSE(target.restoreState(in));
    EXPECT_FALSE(in.ok());
}

TEST(SdcAudit, EscapeEstimateConsistentWithCodecBound)
{
    // The flagship acceptance check in miniature: the audited
    // per-wide-error escape probability must agree with the codec's
    // 2^-64 within a modest tolerance.
    verify::SdcAuditConfig config = smallAuditConfig();
    config.hours = 8;
    config.accessesPerHour = 1.0e8;
    config.wideOversample = 0.5;
    verify::SdcAudit audit(config);
    audit.run();
    const verify::SdcAuditReport report = audit.report();

    ASSERT_GT(report.total.wideDraws, 500u);
    EXPECT_TRUE(report.escapeConsistentWith(
        ecc::BambooCodec::escapeProbability8BPlus(), 2.0));
}

TEST(SdcAudit, BurstOverlayAddsDetectedErrors)
{
    verify::SdcAuditConfig quiet = smallAuditConfig();
    verify::SdcAuditConfig bursty = smallAuditConfig();
    bursty.bursts.intensity = 1.0;
    bursty.bursts.burstsPerHour = 5.0;
    bursty.bursts.burstErrorsMean = 200.0;
    bursty.bursts.targets = bursty.modules;
    bursty.bursts.horizonSeconds = bursty.hours * 3600.0;

    verify::SdcAudit a(quiet);
    verify::SdcAudit b(bursty);
    a.run();
    b.run();
    EXPECT_GT(b.report().detectedErrors, a.report().detectedErrors);
    EXPECT_EQ(b.report().total.unclassified, 0u);
}

TEST(SdcAudit, DriftOverlayAddsErrorsAndRefingerprints)
{
    // The drift-chaos harness hands its voltage-noise spikes to the
    // audit as a kErrorBurst overlay: extra detected-error pressure,
    // and a different campaign identity for snapshot purposes.
    verify::SdcAuditConfig quiet = smallAuditConfig();
    verify::SdcAuditConfig drifted = smallAuditConfig();
    fault::FaultEvent burst;
    burst.kind = fault::FaultKind::kErrorBurst;
    burst.atSeconds = 3600.0; // hour 1 of the 3-hour horizon
    burst.target = 1;
    burst.magnitude = 500.0;
    drifted.scheduleOverlay.push_back(burst);
    // Non-burst kinds in the overlay are ignored by the audit.
    fault::FaultEvent window;
    window.kind = fault::FaultKind::kTemperatureExcursion;
    window.atSeconds = 0.0;
    window.durationSeconds = 3600.0;
    drifted.scheduleOverlay.push_back(window);

    verify::SdcAudit a(quiet);
    verify::SdcAudit b(drifted);
    a.run();
    b.run();
    EXPECT_GT(b.report().detectedErrors, a.report().detectedErrors);
    EXPECT_EQ(b.report().total.unclassified, 0u);

    // Overlay differences must block cross-realization resume.
    snapshot::Serializer out;
    a.saveState(out);
    verify::SdcAudit target(drifted);
    snapshot::Deserializer in(out.data());
    EXPECT_FALSE(target.restoreState(in));
    EXPECT_FALSE(in.ok());
}

TEST(SdcAudit, OverlayValidateRejectsBadEvents)
{
    verify::SdcAuditConfig config = smallAuditConfig();
    config.scheduleOverlay.emplace_back();
    config.scheduleOverlay[0].atSeconds = -1.0;
    util::Status status = config.validate();
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument)
        << status.message();
    EXPECT_NE(status.message().find("scheduleOverlay"),
              std::string::npos)
        << status.message();
    config.scheduleOverlay[0].atSeconds = 0.0;
    config.scheduleOverlay[0].magnitude =
        std::numeric_limits<double>::quiet_NaN();
    status = config.validate();
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument)
        << status.message();
    EXPECT_NE(status.message().find("scheduleOverlay"),
              std::string::npos)
        << status.message();
}

TEST(OracleCounters, PageClassSplitMerges)
{
    verify::OracleCounters a, b;
    a.countEscapePageClass(false, 2.0);
    a.countEscapePageClass(true, 0.5);
    b.countEscapePageClass(true, 1.5);
    a.merge(b);
    EXPECT_EQ(a.escapesByPageClass[0], 1u);
    EXPECT_EQ(a.escapesByPageClass[1], 2u);
    EXPECT_DOUBLE_EQ(a.escapeWeightByPageClass[0], 2.0);
    EXPECT_DOUBLE_EQ(a.escapeWeightByPageClass[1], 2.0);
}

TEST(ShadowMemoryOracle, PageClassDrawIsDeterministic)
{
    const ecc::BambooCodec codec;
    verify::OracleConfig config;
    config.tolerantPageFraction = 0.75;
    const verify::ShadowMemoryOracle a(codec, config);
    const verify::ShadowMemoryOracle b(codec, config);

    unsigned tolerant = 0;
    for (std::uint64_t page = 0; page < 2000; ++page) {
        // 4 KiB page granularity: every block of a page shares its
        // class, and the draw is a pure function of the config.
        const std::uint64_t address = page << 12;
        ASSERT_EQ(a.pageTolerant(address), b.pageTolerant(address));
        ASSERT_EQ(a.pageTolerant(address),
                  a.pageTolerant(address + 4095));
        tolerant += a.pageTolerant(address) ? 1 : 0;
    }
    EXPECT_NEAR(tolerant / 2000.0, 0.75, 0.05);

    verify::OracleConfig critical = config;
    critical.tolerantPageFraction = 0.0;
    const verify::ShadowMemoryOracle all_critical(codec, critical);
    for (std::uint64_t page = 0; page < 64; ++page)
        EXPECT_FALSE(all_critical.pageTolerant(page << 12));
}

TEST(SdcAudit, EscapePageClassSplitCoversEveryEscape)
{
    verify::SdcAuditConfig config = smallAuditConfig();
    config.oracle.tolerantPageFraction = 0.75;
    verify::SdcAudit audit(config);
    audit.run();
    const verify::OracleCounters &total = audit.report().total;
    const auto escape =
        static_cast<unsigned>(AccessClass::kSilentEscape);
    EXPECT_GT(total.raw[escape], 0u);
    EXPECT_EQ(total.escapesByPageClass[0] + total.escapesByPageClass[1],
              total.raw[escape]);

    // All-critical audit: the tolerant bucket must stay empty.
    verify::SdcAudit critical(smallAuditConfig());
    critical.run();
    const verify::OracleCounters &ctotal = critical.report().total;
    EXPECT_EQ(ctotal.escapesByPageClass[1], 0u);
    EXPECT_EQ(ctotal.escapesByPageClass[0], ctotal.raw[escape]);
}

TEST(SdcAudit, TolerantFractionRefingerprints)
{
    verify::SdcAudit source(smallAuditConfig());
    source.step();
    snapshot::Serializer out;
    source.saveState(out);

    verify::SdcAuditConfig other = smallAuditConfig();
    other.oracle.tolerantPageFraction = 0.75;
    verify::SdcAudit target(other);
    snapshot::Deserializer in(out.data());
    EXPECT_FALSE(target.restoreState(in));
}

TEST(SdcAudit, PerEpochCountersCoverTheHorizon)
{
    verify::SdcAudit audit(smallAuditConfig());
    audit.run();
    // One-hour epochs over a 3-hour horizon: exactly 3 epoch slots,
    // each with traffic from both modules.
    const auto &epochs = audit.epochCounters();
    ASSERT_EQ(epochs.size(), 3u);
    for (const auto &epoch : epochs) {
        EXPECT_GT(epoch.rawTotal(), 0u);
        EXPECT_EQ(epoch.unclassified, 0u);
    }
}

} // namespace
