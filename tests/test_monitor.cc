/**
 * @file
 * Tests for src/monitor: one-pass config validation (first offender
 * named, construction fatals), region sampler behaviour (split/merge
 * engagement, region invariants, budget self-enforcement in both
 * directions), scheme-config parsing (valid forms, malformed inputs
 * never half-fill the output), predicate/quota/cooldown semantics,
 * action dispatch against a recording fake sink, snapshot round-trips
 * with foreign-fingerprint rejection, EpochGuard epoch-length
 * adaptation, and node-level guard-band plumbing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/epoch_guard.hh"
#include "core/mode_controller.hh"
#include "monitor/action_sink.hh"
#include "monitor/monitor.hh"
#include "monitor/scheme.hh"
#include "node/config.hh"
#include "node/node_system.hh"
#include "snapshot/serializer.hh"
#include "util/status.hh"
#include "workloads/hpc_workloads.hh"

namespace
{

using namespace hdmr;
using util::Tick;
using monitor::AggregationInfo;
using monitor::MonitorConfig;
using monitor::Region;
using monitor::RegionSampler;
using monitor::Scheme;
using monitor::SchemeAction;
using monitor::SchemeConfig;
using monitor::SchemeEngine;

// ---- Config validation. ---------------------------------------------

MonitorConfig
enabledConfig()
{
    MonitorConfig mon;
    mon.enabled = true;
    mon.samplingInterval = 2 * util::kTicksPerUs;
    mon.aggregationInterval = 10 * util::kTicksPerUs;
    mon.regionUpdateInterval = 30 * util::kTicksPerUs;
    mon.minRegions = 4;
    mon.maxRegions = 32;
    return mon;
}

TEST(MonitorConfig, DefaultAndEnabledValidate)
{
    EXPECT_TRUE(MonitorConfig().validate().ok());
    EXPECT_TRUE(enabledConfig().validate().ok());
}

TEST(MonitorConfig, FirstOffenderIsNamed)
{
    struct Case
    {
        std::function<void(MonitorConfig &)> corrupt;
        const char *field;
    };
    const Case cases[] = {
        {[](MonitorConfig &m) { m.samplingInterval = 0; },
         "samplingInterval"},
        {[](MonitorConfig &m) {
             m.aggregationInterval = m.samplingInterval - 1;
         },
         "aggregationInterval"},
        {[](MonitorConfig &m) {
             m.regionUpdateInterval = m.aggregationInterval - 1;
         },
         "regionUpdateInterval"},
        {[](MonitorConfig &m) { m.minRegions = 0; }, "minRegions"},
        {[](MonitorConfig &m) { m.maxRegions = m.minRegions - 1; },
         "maxRegions"},
        {[](MonitorConfig &m) { m.maxRegions = 5000; }, "maxRegions"},
        {[](MonitorConfig &m) { m.overheadBudget = 0.0; },
         "overheadBudget"},
        {[](MonitorConfig &m) { m.overheadBudget = 1.5; },
         "overheadBudget"},
        {[](MonitorConfig &m) { m.sampleCheckCost = 0; },
         "sampleCheckCost"},
        {[](MonitorConfig &m) { m.initialDuty = 0.0; }, "initialDuty"},
        {[](MonitorConfig &m) { m.initialDuty = 1.5; }, "initialDuty"},
        {[](MonitorConfig &m) { m.cores = 0; }, "cores"},
    };
    for (const Case &c : cases) {
        MonitorConfig mon = enabledConfig();
        c.corrupt(mon);
        const util::Status status = mon.validate();
        ASSERT_FALSE(status.ok()) << c.field;
        EXPECT_NE(status.message().find(c.field), std::string::npos)
            << status.message();
    }
}

TEST(MonitorConfigDeathTest, ConstructionFatalsOnBadConfig)
{
    MonitorConfig mon = enabledConfig();
    mon.minRegions = 0;
    EXPECT_DEATH(RegionSampler sampler(mon), "minRegions");
}

TEST(SchemeConfigValidate, KnobRangesAndNames)
{
    SchemeConfig base;
    Scheme stat;
    stat.name = "stat_all";
    base.schemes = {stat};
    EXPECT_TRUE(base.validate().ok());

    struct Case
    {
        std::function<void(SchemeConfig &)> corrupt;
        const char *field;
    };
    const Case cases[] = {
        {[](SchemeConfig &c) { c.writeTriggerBoost = 0.6; },
         "writeTriggerBoost"},
        {[](SchemeConfig &c) { c.preferReadsCleanFraction = -0.1; },
         "preferReadsCleanFraction"},
        {[](SchemeConfig &c) { c.drainCleanFraction = 1.5; },
         "drainCleanFraction"},
        {[](SchemeConfig &c) { c.epochShortenScale = 0.0; },
         "epochShortenScale"},
        {[](SchemeConfig &c) { c.epochLengthenScale = 0.5; },
         "epochLengthenScale"},
        {[](SchemeConfig &c) { c.schemes[0].name = "Bad Name"; },
         "name"},
        {[](SchemeConfig &c) {
             c.schemes.push_back(c.schemes[0]); // duplicate
         },
         "duplicates"},
        {[](SchemeConfig &c) {
             c.schemes[0].predicate.minAccesses = 10;
             c.schemes[0].predicate.maxAccesses = 5;
         },
         "access bounds"},
        {[](SchemeConfig &c) {
             c.schemes[0].predicate.minWriteFraction = 0.8;
             c.schemes[0].predicate.maxWriteFraction = 0.2;
         },
         "write-fraction"},
    };
    for (const Case &c : cases) {
        SchemeConfig config = base;
        c.corrupt(config);
        const util::Status status = config.validate();
        ASSERT_FALSE(status.ok()) << c.field;
        EXPECT_NE(status.message().find(c.field), std::string::npos)
            << status.message();
    }
}

TEST(SchemeConfigDeathTest, EngineConstructionFatalsOnBadConfig)
{
    SchemeConfig config;
    config.drainCleanFraction = -1.0;
    EXPECT_DEATH(SchemeEngine engine(config, nullptr),
                 "drainCleanFraction");
}

// ---- Region sampler. ------------------------------------------------

/** Drive `ops` synthetic accesses through a hot/cold split stream. */
void
drive(RegionSampler &sampler, std::uint64_t ops,
      std::uint64_t *charged = nullptr)
{
    Tick now = 0;
    std::uint64_t total_charged = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        // Hot first MiB, sparse tail; every 7th access is a write.
        const bool hot = i % 4 != 0;
        const std::uint64_t address =
            hot ? (i * 64) % (1 << 20)
                : (1 << 20) + (i * 4096) % (64 << 20);
        now += 1000; // one access per ns: 200k ops spans ~200 us
        total_charged +=
            sampler.onAccess(address, i % 7 == 0, now);
    }
    if (charged)
        *charged = total_charged;
}

TEST(RegionSampler, DisabledCostsNothingAndKeepsNoState)
{
    MonitorConfig mon; // enabled = false
    RegionSampler sampler(mon);
    std::uint64_t charged = 0;
    drive(sampler, 5000, &charged);
    EXPECT_EQ(charged, 0u);
    EXPECT_EQ(sampler.stats().totalAccesses, 0u);
    EXPECT_EQ(sampler.stats().aggregations, 0u);
    EXPECT_TRUE(sampler.regions().empty());
}

TEST(RegionSampler, SplitsMergesAndRegionInvariants)
{
    RegionSampler sampler(enabledConfig());
    drive(sampler, 200000);
    const monitor::MonitorStats &stats = sampler.stats();
    EXPECT_GT(stats.aggregations, 0u);
    EXPECT_GT(stats.sampledAccesses, 0u);
    EXPECT_GT(stats.splits, 0u);
    EXPECT_GT(stats.merges, 0u);

    const std::vector<Region> &regions = sampler.regions();
    ASSERT_FALSE(regions.empty());
    EXPECT_LE(regions.size(), enabledConfig().maxRegions);
    for (std::size_t i = 0; i < regions.size(); ++i) {
        EXPECT_LT(regions[i].start, regions[i].end) << i;
        if (i > 0) {
            EXPECT_LE(regions[i - 1].end, regions[i].start) << i;
        }
    }
}

TEST(RegionSampler, StarvedBudgetThrottlesTheDutyWindow)
{
    MonitorConfig mon = enabledConfig();
    mon.overheadBudget = 1.0e-4;
    RegionSampler sampler(mon);
    const Tick initial_window = sampler.windowTicks();
    drive(sampler, 100000);
    EXPECT_GT(sampler.stats().throttles, 0u);
    EXPECT_LT(sampler.windowTicks(), initial_window);
}

TEST(RegionSampler, GenerousBudgetGrowsTheDutyWindowBack)
{
    MonitorConfig mon = enabledConfig();
    mon.overheadBudget = 1.0;
    mon.initialDuty = 0.05;
    RegionSampler sampler(mon);
    const Tick initial_window = sampler.windowTicks();
    drive(sampler, 100000);
    EXPECT_GT(sampler.stats().boosts, 0u);
    EXPECT_GT(sampler.windowTicks(), initial_window);
}

TEST(RegionSampler, NodeHistogramIsTheMergeOfRegionHistories)
{
    RegionSampler sampler(enabledConfig());
    drive(sampler, 50000);
    telemetry::Log2Histogram expected;
    for (const Region &region : sampler.regions())
        expected.merge(region.history);
    const telemetry::Log2Histogram merged =
        sampler.nodeAccessHistogram();
    EXPECT_EQ(merged.count(), expected.count());
    EXPECT_EQ(merged.sum(), expected.sum());
    for (unsigned b = 0; b < telemetry::Log2Histogram::kBuckets; ++b)
        EXPECT_EQ(merged.bucketCount(b), expected.bucketCount(b)) << b;
}

TEST(RegionSampler, DeterministicAcrossIdenticalRuns)
{
    RegionSampler a(enabledConfig());
    RegionSampler b(enabledConfig());
    drive(a, 60000);
    drive(b, 60000);
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(RegionSampler, SnapshotRoundTripsInPlaceAndIntoFreshObject)
{
    RegionSampler resumed(enabledConfig());
    drive(resumed, 30000);
    const std::uint64_t digest_before = resumed.digest();

    // An in-place round trip must not perturb any state.
    snapshot::Serializer out;
    resumed.saveState(out);
    snapshot::Deserializer in(out.data());
    ASSERT_TRUE(resumed.restoreState(in));
    EXPECT_TRUE(in.ok());
    EXPECT_EQ(in.remaining(), 0u);
    EXPECT_EQ(resumed.digest(), digest_before);

    // A fresh sampler restored from the image digests identically.
    RegionSampler fresh(enabledConfig());
    snapshot::Deserializer in2(out.data());
    ASSERT_TRUE(fresh.restoreState(in2));
    EXPECT_EQ(fresh.digest(), digest_before);
}

TEST(RegionSampler, RestoreRejectsForeignConfigAndTruncation)
{
    RegionSampler source(enabledConfig());
    drive(source, 30000);
    snapshot::Serializer out;
    source.saveState(out);

    MonitorConfig other = enabledConfig();
    other.maxRegions = 16; // different fingerprint
    RegionSampler foreign(other);
    snapshot::Deserializer in(out.data());
    EXPECT_FALSE(foreign.restoreState(in));

    std::vector<std::uint8_t> truncated = out.data();
    truncated.resize(truncated.size() / 2);
    RegionSampler target(enabledConfig());
    snapshot::Deserializer in2(truncated);
    EXPECT_FALSE(target.restoreState(in2) && in2.ok());
}

// ---- Scheme-config parser. ------------------------------------------

TEST(SchemeParser, ShippedDefaultParsesAndNamesItsSchemes)
{
    SchemeConfig config;
    ASSERT_TRUE(monitor::parseSchemeConfig(
                    monitor::defaultPhaseAdaptiveSchemes(), &config)
                    .ok());
    std::vector<std::string> names;
    for (const Scheme &s : config.schemes)
        names.push_back(s.name);
    EXPECT_EQ(names,
              (std::vector<std::string>{"earn_margin",
                                        "prefer_reads_hot",
                                        "stat_all"}));
    EXPECT_DOUBLE_EQ(config.writeTriggerBoost, 0.08);
    EXPECT_DOUBLE_EQ(config.preferReadsCleanFraction, 0.1);
    EXPECT_DOUBLE_EQ(config.drainCleanFraction, 0.1);
    EXPECT_EQ(config.schemes[0].action, SchemeAction::kPromoteMargin);
    EXPECT_EQ(config.schemes[0].quota, 2u);
    EXPECT_EQ(config.schemes[0].cooldown, 16u);
    EXPECT_EQ(config.schemes[1].action, SchemeAction::kPreferReads);
}

TEST(SchemeParser, RangesStarsAndComments)
{
    const char *text =
        "# leading comment\n"
        "set epoch_shorten_scale=0.5\n"
        "scheme s1 size=4096:* acc=10:100 age=*:8 wfrac=0.25:* "
        "node=*:* action=epoch_shorten cooldown=3\n"
        "scheme s2 action=hint_fast quota=7  # trailing comment\n";
    SchemeConfig config;
    ASSERT_TRUE(monitor::parseSchemeConfig(text, &config).ok());
    ASSERT_EQ(config.schemes.size(), 2u);
    const monitor::SchemePredicate &p = config.schemes[0].predicate;
    EXPECT_EQ(p.minSizeBytes, 4096u);
    EXPECT_EQ(p.maxSizeBytes, ~std::uint64_t(0));
    EXPECT_EQ(p.minAccesses, 10u);
    EXPECT_EQ(p.maxAccesses, 100u);
    EXPECT_EQ(p.minAge, 0u);
    EXPECT_EQ(p.maxAge, 8u);
    EXPECT_DOUBLE_EQ(p.minWriteFraction, 0.25);
    EXPECT_DOUBLE_EQ(p.maxWriteFraction, 1.0);
    EXPECT_DOUBLE_EQ(config.epochShortenScale, 0.5);
    EXPECT_EQ(config.schemes[1].quota, 7u);
}

TEST(SchemeParser, MalformedInputNeverHalfFillsTheOutput)
{
    const char *bad_texts[] = {
        "scheme\n",                                  // no name
        "scheme s1\n",                               // no action
        "scheme s1 action=warp_drive\n",             // unknown action
        "scheme s1 action=stat bogus=1\n",           // unknown key
        "scheme s1 action=stat acc=nope:4\n",        // bad range
        "scheme s1 action=stat acc=9:4\n",           // inverted (validate)
        "scheme s1 action=stat quota=-3\n",          // bad number
        "scheme Bad_Upper action=stat\n",            // bad name charset
        "set unknown_knob=1\n",                      // unknown set key
        "set write_trigger_boost=oops\n",            // bad set value
        "set write_trigger_boost=0.9\n",             // validate rejects
        "frobnicate s1\n",                           // unknown directive
        "scheme s1 action=stat\nscheme s1 action=stat\n", // duplicate
    };
    for (const char *text : bad_texts) {
        SchemeConfig out;
        Scheme sentinel;
        sentinel.name = "sentinel";
        out.schemes = {sentinel};
        out.writeTriggerBoost = 0.25;
        const util::Status status =
            monitor::parseSchemeConfig(text, &out);
        ASSERT_FALSE(status.ok()) << text;
        // Untouched on failure.
        ASSERT_EQ(out.schemes.size(), 1u) << text;
        EXPECT_EQ(out.schemes[0].name, "sentinel") << text;
        EXPECT_DOUBLE_EQ(out.writeTriggerBoost, 0.25) << text;
    }
}

TEST(SchemeParser, OversizedInputsAreRejected)
{
    SchemeConfig out;
    const std::string long_line(monitor::kMaxSchemeConfigLineBytes + 1,
                                '#');
    EXPECT_FALSE(monitor::parseSchemeConfig(long_line, &out).ok());
    std::string huge;
    huge.reserve(monitor::kMaxSchemeConfigBytes + 64);
    while (huge.size() <= monitor::kMaxSchemeConfigBytes)
        huge += "# padding line\n";
    EXPECT_FALSE(monitor::parseSchemeConfig(huge, &out).ok());
}

// ---- Predicates and the engine. -------------------------------------

Region
makeRegion(std::uint64_t start, std::uint64_t size,
           std::uint64_t accesses, std::uint64_t writes,
           std::uint32_t age)
{
    Region region;
    region.start = start;
    region.end = start + size;
    region.nrAccesses = accesses;
    region.nrWrites = writes;
    region.age = age;
    return region;
}

TEST(SchemePredicate, EveryAxisBounds)
{
    monitor::SchemePredicate p;
    p.minSizeBytes = 1024;
    p.maxSizeBytes = 4096;
    p.minAccesses = 10;
    p.minAge = 2;
    p.maxWriteFraction = 0.5;
    p.minNodeSamples = 100;

    AggregationInfo info;
    info.sampledAccesses = 500;
    EXPECT_TRUE(p.matches(makeRegion(0, 2048, 20, 5, 3), info));
    EXPECT_FALSE(p.matches(makeRegion(0, 512, 20, 5, 3), info));
    EXPECT_FALSE(p.matches(makeRegion(0, 8192, 20, 5, 3), info));
    EXPECT_FALSE(p.matches(makeRegion(0, 2048, 5, 1, 3), info));
    EXPECT_FALSE(p.matches(makeRegion(0, 2048, 20, 15, 3), info));
    EXPECT_FALSE(p.matches(makeRegion(0, 2048, 20, 5, 1), info));
    info.sampledAccesses = 50;
    EXPECT_FALSE(p.matches(makeRegion(0, 2048, 20, 5, 3), info));
}

/** Records every ActionSink call in order. */
struct FakeSink : monitor::ActionSink
{
    struct Call
    {
        std::string what;
        double value = 0.0;
        std::uint64_t bytes = 0;
    };
    std::vector<Call> calls;

    void
    drainWrites(double clean_fraction) override
    {
        calls.push_back({"drain", clean_fraction, 0});
    }
    void
    setWriteTriggerBoost(double boost) override
    {
        calls.push_back({"boost", boost, 0});
    }
    void
    setEpochScale(double scale) override
    {
        calls.push_back({"epoch", scale, 0});
    }
    void
    setCleanFraction(double fraction) override
    {
        calls.push_back({"clean", fraction, 0});
    }
    void
    promoteMargin() override
    {
        calls.push_back({"promote", 0.0, 0});
    }
    void
    demoteMargin() override
    {
        calls.push_back({"demote", 0.0, 0});
    }
    void
    hintPlacement(monitor::PlacementClass cls,
                  std::uint64_t bytes) override
    {
        calls.push_back({cls == monitor::PlacementClass::kFast
                             ? "hint_fast"
                             : "hint_spec",
                         0.0, bytes});
    }

    std::size_t
    count(const std::string &what) const
    {
        std::size_t n = 0;
        for (const Call &c : calls)
            n += c.what == what;
        return n;
    }
};

SchemeConfig
oneScheme(SchemeAction action, std::uint64_t quota = 0,
          std::uint32_t cooldown = 0)
{
    SchemeConfig config;
    Scheme scheme;
    scheme.name = "under_test";
    scheme.predicate.minAccesses = 10;
    scheme.action = action;
    scheme.quota = quota;
    scheme.cooldown = cooldown;
    config.schemes = {scheme};
    return config;
}

AggregationInfo
aggAt(std::uint64_t index)
{
    AggregationInfo info;
    info.index = index;
    info.sampledAccesses = 1000;
    return info;
}

TEST(SchemeEngine, EdgeActionHonorsQuotaAndCooldown)
{
    FakeSink sink;
    SchemeConfig config = oneScheme(SchemeAction::kDrainWrites,
                                    /*quota=*/2, /*cooldown=*/2);
    config.drainCleanFraction = 0.3;
    SchemeEngine engine(config, &sink);
    const std::vector<Region> hot = {makeRegion(0, 4096, 50, 0, 1)};

    for (std::uint64_t i = 0; i < 10; ++i)
        engine.onAggregation(hot, aggAt(i));
    // Fires at index 0, cooldown masks 1-2, fires at 3, quota caps.
    EXPECT_EQ(sink.count("drain"), 2u);
    EXPECT_DOUBLE_EQ(sink.calls[0].value, 0.3);
    EXPECT_EQ(engine.states()[0].fires, 2u);
    EXPECT_EQ(engine.states()[0].lastFireAggregation, 3u);
    EXPECT_GT(engine.states()[0].hits, engine.states()[0].fires);
}

TEST(SchemeEngine, LevelActionAssertsAndReleases)
{
    FakeSink sink;
    SchemeConfig config = oneScheme(SchemeAction::kPreferReads);
    config.writeTriggerBoost = 0.08;
    config.preferReadsCleanFraction = 0.1;
    SchemeEngine engine(config, &sink);
    const std::vector<Region> hot = {makeRegion(0, 4096, 50, 0, 1)};
    const std::vector<Region> cold = {makeRegion(0, 4096, 0, 0, 1)};

    engine.onAggregation(hot, aggAt(0));
    EXPECT_TRUE(engine.readPreferenceActive());
    ASSERT_EQ(sink.calls.size(), 2u);
    EXPECT_EQ(sink.calls[0].what, "boost");
    EXPECT_DOUBLE_EQ(sink.calls[0].value, 0.08);
    EXPECT_EQ(sink.calls[1].what, "clean");
    EXPECT_DOUBLE_EQ(sink.calls[1].value, 0.1);

    engine.onAggregation(hot, aggAt(1)); // still held: no re-assert
    EXPECT_EQ(sink.calls.size(), 2u);

    engine.onAggregation(cold, aggAt(2)); // released
    EXPECT_FALSE(engine.readPreferenceActive());
    ASSERT_EQ(sink.calls.size(), 4u);
    EXPECT_DOUBLE_EQ(sink.calls[2].value, 0.0);
    EXPECT_DOUBLE_EQ(sink.calls[3].value, 1.0);
}

TEST(SchemeEngine, ShortenOutranksLengthen)
{
    FakeSink sink;
    SchemeConfig config;
    Scheme shorten;
    shorten.name = "shorten";
    shorten.predicate.minWriteFraction = 0.5;
    shorten.action = SchemeAction::kEpochShorten;
    Scheme lengthen;
    lengthen.name = "lengthen";
    lengthen.action = SchemeAction::kEpochLengthen;
    config.schemes = {shorten, lengthen};
    config.epochShortenScale = 0.25;
    config.epochLengthenScale = 4.0;
    SchemeEngine engine(config, &sink);

    const std::vector<Region> writey = {makeRegion(0, 4096, 50, 40, 1)};
    engine.onAggregation(writey, aggAt(0));
    // Both match; the conservative shorten wins the resolved level.
    EXPECT_DOUBLE_EQ(engine.epochScale(), 0.25);
    ASSERT_EQ(sink.count("epoch"), 1u);

    const std::vector<Region> ready = {makeRegion(0, 4096, 50, 0, 1)};
    engine.onAggregation(ready, aggAt(1));
    EXPECT_DOUBLE_EQ(engine.epochScale(), 4.0);
}

TEST(SchemeEngine, PromoteDemoteAndPlacementHints)
{
    FakeSink sink;
    SchemeConfig config;
    Scheme promote = oneScheme(SchemeAction::kPromoteMargin).schemes[0];
    promote.name = "promote";
    Scheme hint = oneScheme(SchemeAction::kHintFast).schemes[0];
    hint.name = "hint";
    config.schemes = {promote, hint};
    SchemeEngine engine(config, &sink);

    const std::vector<Region> regions = {
        makeRegion(0, 4096, 50, 0, 1),
        makeRegion(4096, 8192, 60, 0, 2),
    };
    engine.onAggregation(regions, aggAt(0));
    EXPECT_EQ(sink.count("promote"), 1u);
    ASSERT_EQ(sink.count("hint_fast"), 1u);
    // The hint covers the bytes of every matching region.
    EXPECT_EQ(sink.calls.back().bytes, 4096u + 8192u);
}

TEST(SchemeEngine, SnapshotRoundTripReassertsHolds)
{
    FakeSink sink;
    SchemeConfig config = oneScheme(SchemeAction::kPreferReads);
    SchemeEngine engine(config, &sink);
    const std::vector<Region> hot = {makeRegion(0, 4096, 50, 0, 1)};
    engine.onAggregation(hot, aggAt(0));
    ASSERT_TRUE(engine.readPreferenceActive());
    const std::uint64_t digest = engine.digest();

    snapshot::Serializer out;
    engine.saveState(out);

    // Restore into a fresh engine: state identical, hold re-asserted
    // into ITS sink so the node layer reconverges.
    FakeSink sink2;
    SchemeEngine fresh(config, &sink2);
    snapshot::Deserializer in(out.data());
    ASSERT_TRUE(fresh.restoreState(in));
    EXPECT_TRUE(in.ok());
    EXPECT_EQ(fresh.digest(), digest);
    EXPECT_TRUE(fresh.readPreferenceActive());
    EXPECT_GE(sink2.count("boost"), 1u);
    EXPECT_GE(sink2.count("clean"), 1u);
}

TEST(SchemeEngine, RestoreRejectsForeignSchemeList)
{
    SchemeEngine source(oneScheme(SchemeAction::kStat), nullptr);
    snapshot::Serializer out;
    source.saveState(out);

    SchemeEngine other(oneScheme(SchemeAction::kDrainWrites), nullptr);
    snapshot::Deserializer in(out.data());
    EXPECT_FALSE(other.restoreState(in));
}

// ---- EpochGuard adaptive-length interaction. ------------------------

TEST(EpochGuardAdaptive, SetEpochLengthRescalesThresholdAndReanchors)
{
    core::EpochGuardConfig config;
    config.epochLength = 1000000;
    config.mttSdcYears = 1.0e-9; // tiny target => small thresholds
    core::EpochGuard guard(config);
    const std::uint64_t base_threshold = config.errorThreshold();
    ASSERT_GT(base_threshold, 0u);

    // Accumulate some errors mid-epoch, then shorten the epoch: the
    // epoch containing `now` continues (no spurious roll) and the
    // threshold scales with the length.
    const Tick now = 500000;
    guard.recordError(now);
    guard.recordError(now + 1);
    EXPECT_EQ(guard.errorsThisEpoch(), 2u);

    guard.setEpochLength(config.epochLength / 4, now + 2);
    EXPECT_EQ(guard.epochLength(), config.epochLength / 4);
    EXPECT_EQ(guard.errorsThisEpoch(), 2u); // carried, not reset
    core::EpochGuardConfig quarter = config;
    quarter.epochLength = config.epochLength / 4;
    EXPECT_EQ(guard.config().errorThreshold(),
              quarter.errorThreshold());

    // Re-applying the current length is a no-op (monitors re-assert
    // hold levels after snapshot restores).
    const Tick end_before = guard.epochEnd(now + 2);
    guard.setEpochLength(guard.epochLength(), now + 2);
    EXPECT_EQ(guard.epochEnd(now + 2), end_before);
    EXPECT_EQ(guard.baseEpochLength(), config.epochLength);
}

// ---- Node-level plumbing. -------------------------------------------

node::NodeConfig
tinyMonitoredNode()
{
    node::NodeConfig config;
    config.hierarchy = node::HierarchyConfig::hierarchy1();
    config.workload = wl::benchmarkByName("lulesh");
    config.memOpsPerCore = 3000;
    config.warmupOpsPerCore = 2000;
    config.memorySystem = node::MemorySystemKind::kHeteroDmr;
    config.seed = 11;
    config.monitoring.enabled = true;
    config.monitoring.samplingInterval = 2 * util::kTicksPerUs;
    config.monitoring.aggregationInterval = 5 * util::kTicksPerUs;
    config.monitoring.regionUpdateInterval = 15 * util::kTicksPerUs;
    util::checkOk(monitor::parseSchemeConfig(
        monitor::defaultPhaseAdaptiveSchemes(), &config.schemes));
    return config;
}

TEST(NodeMonitor, MonitoredRunIsDeterministic)
{
    node::NodeSystem a(tinyMonitoredNode());
    node::NodeSystem b(tinyMonitoredNode());
    const node::NodeStats sa = a.run();
    const node::NodeStats sb = b.run();
    EXPECT_EQ(sa.execSeconds, sb.execSeconds);
    EXPECT_GT(sa.monitorAggregations, 0u);
    ASSERT_NE(a.regionSampler(), nullptr);
    ASSERT_NE(b.regionSampler(), nullptr);
    EXPECT_EQ(a.regionSampler()->digest(), b.regionSampler()->digest());
    EXPECT_EQ(a.schemeEngine()->digest(), b.schemeEngine()->digest());
}

TEST(NodeMonitor, MonitoringOffKeepsTheSeedPath)
{
    node::NodeConfig config = tinyMonitoredNode();
    config.monitoring = monitor::MonitorConfig(); // disabled
    config.schemes = monitor::SchemeConfig();
    node::NodeSystem sys(config);
    EXPECT_EQ(sys.regionSampler(), nullptr);
    EXPECT_EQ(sys.schemeEngine(), nullptr);
    const node::NodeStats stats = sys.run();
    EXPECT_EQ(stats.monitorSamples, 0u);
    EXPECT_EQ(stats.monitorAggregations, 0u);
    EXPECT_EQ(stats.schemeFires, 0u);
    EXPECT_DOUBLE_EQ(stats.monitorOverheadFraction, 0.0);
}

TEST(NodeMonitor, GuardBandPlumbsIntoTheModeControllers)
{
    node::NodeConfig config = tinyMonitoredNode();
    config.monitoring = monitor::MonitorConfig();
    config.schemes = monitor::SchemeConfig();
    config.marginGuardBandMts = 400;
    node::NodeSystem sys(config);
    auto channels = sys.modeControllers();
    ASSERT_FALSE(channels.empty());
    core::ModeController *mc = channels[0];
    // hierarchy1 Hetero-DMR qualifies at 3200 + 800 = 4000 MT/s; the
    // band holds the deployment two demotion steps below it.
    EXPECT_EQ(mc->qualifiedFastRateMts(), 4000u);
    mc->promote();
    mc->promote();
    EXPECT_EQ(mc->stats().recalPromotions, 2u);
    mc->promote(); // at the qualified rate: no-op
    EXPECT_EQ(mc->stats().recalPromotions, 2u);
}

TEST(NodeMonitor, ZeroGuardBandHasNothingToPromote)
{
    node::NodeConfig config = tinyMonitoredNode();
    config.monitoring = monitor::MonitorConfig();
    config.schemes = monitor::SchemeConfig();
    config.marginGuardBandMts = 0;
    node::NodeSystem sys(config);
    core::ModeController *mc = sys.modeControllers()[0];
    mc->promote();
    EXPECT_EQ(mc->stats().recalPromotions, 0u);
}

} // anonymous namespace
