/**
 * @file
 * End-to-end replay-determinism audit, run as a ctest (including the
 * ASan+UBSan preset).
 *
 * Exercises the determinism guarantee the snapshot layer depends on,
 * on a short fig17-style configuration:
 *
 *   1. the same run executed twice produces identical digest trails
 *      (no hidden nondeterminism: unordered iteration, uninitialized
 *      reads, address-dependent ordering);
 *   2. a run stopped mid-way, serialized, restored into a fresh
 *      simulator and resumed produces the same digest trail and
 *      bit-identical final metrics as the straight-through run;
 *   3. a corrupted snapshot file is rejected, not half-loaded.
 *
 * On divergence the check exits nonzero naming the first divergent
 * digest epoch, which is the bisection starting point for any future
 * nondeterminism bug.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "monitor/monitor.hh"
#include "monitor/scheme.hh"
#include "node/config.hh"
#include "node/node_system.hh"
#include "sched/cluster_sim.hh"
#include "snapshot/digest.hh"
#include "snapshot/serializer.hh"
#include "traces/job_trace.hh"
#include "util/status.hh"

namespace
{

using namespace hdmr;

int g_failures = 0;

void
check(bool ok, const char *what)
{
    std::printf("%s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok)
        ++g_failures;
}

void
checkTrailsIdentical(const snapshot::DigestTrail &a,
                     const snapshot::DigestTrail &b, const char *what)
{
    const auto divergence = snapshot::DigestTrail::firstDivergence(a, b);
    if (!divergence.has_value()) {
        std::printf("ok: %s (%zu digest epochs identical)\n", what,
                    a.digests.size());
        return;
    }
    std::printf("FAIL: %s - first divergence at digest epoch %zu "
                "(%.0f simulated seconds)\n",
                what, *divergence,
                static_cast<double>(*divergence + 1) * a.epochSeconds);
    ++g_failures;
}

sched::ClusterConfig
shortConfig(bool faulted)
{
    sched::ClusterConfig config;
    config.nodes = 192;
    config.heteroDmr = true;
    config.marginAware = !faulted; // faulted leg also exercises the
                                   // RNG-driven default allocator
    if (faulted) {
        config.faults.intensity = 4.0;
        config.faults.uncorrectablePerHour = 2.0e-4;
        config.faults.nodeFailuresPerHour = 2.0e-5;
        config.faults.demotionsPerHour = 1.0e-4;
        config.faults.horizonSeconds = 10 * 86400.0;
        config.resilience.checkpointIntervalSeconds = 1800.0;
        config.resilience.checkpointOverheadFraction = 0.02;
    }
    return config;
}

void
auditConfig(const sched::ClusterConfig &config,
            const std::vector<traces::Job> &jobs, const char *label)
{
    std::printf("-- %s --\n", label);
    sched::RunOptions options;
    options.digestEverySeconds = 6 * 3600.0;

    sched::ClusterSimulator first(config);
    const sched::RunOutcome run_a = first.run(jobs, options);
    sched::ClusterSimulator second(config);
    const sched::RunOutcome run_b = second.run(jobs, options);
    checkTrailsIdentical(run_a.digests, run_b.digests,
                         "same run twice");
    check(sched::metricsIdentical(run_a.metrics, run_b.metrics),
          "same run twice: metrics bit-identical");

    // Save mid-run, restore into a fresh simulator, resume.
    std::vector<std::uint8_t> state;
    sched::RunOptions stopping = options;
    stopping.stopAfterSeconds = 4 * 86400.0;
    stopping.snapshotSink =
        [&](const std::vector<std::uint8_t> &bytes) { state = bytes; };
    sched::ClusterSimulator interrupted(config);
    const sched::RunOutcome partial = interrupted.run(jobs, stopping);
    check(!partial.completed && !state.empty(),
          "mid-run stop emitted a snapshot");

    sched::ClusterSimulator resumed(config);
    const util::Status restored = resumed.restoreState(state, jobs);
    if (!restored.ok()) {
        std::printf("FAIL: restore: %s\n",
                    restored.message().c_str());
        ++g_failures;
        return;
    }
    const sched::RunOutcome rest = resumed.resume(options);
    checkTrailsIdentical(run_a.digests, rest.digests,
                         "save/resume vs straight-through");
    check(sched::metricsIdentical(run_a.metrics, rest.metrics),
          "save/resume: metrics bit-identical");
}

void
auditCorruptionRejection(const sched::ClusterConfig &config,
                         const std::vector<traces::Job> &jobs)
{
    std::printf("-- snapshot-file integrity --\n");
    std::vector<std::uint8_t> state;
    sched::RunOptions options;
    options.stopAfterSeconds = 2 * 86400.0;
    options.snapshotSink =
        [&](const std::vector<std::uint8_t> &bytes) { state = bytes; };
    sched::ClusterSimulator sim(config);
    sim.run(jobs, options);

    const std::string path = "determinism_check.snap";
    check(sched::ClusterSimulator::writeStateFile(path, state).ok(),
          "snapshot file written");
    {
        std::fstream file(path, std::ios::binary | std::ios::in |
                                    std::ios::out);
        file.seekp(128);
        file.put('\x7f');
    }
    sched::ClusterSimulator corrupt(config);
    const util::Status status = corrupt.restoreFile(path, jobs);
    check(status.code() == util::StatusCode::kDataLoss,
          "corrupted snapshot file rejected as data loss");
    std::remove(path.c_str());
}

/**
 * Monitored-node replay determinism: one digest per aggregation over
 * sampler + scheme-engine state.  `roundtrip_at` > 0 additionally
 * serializes and restores the monitor state in place mid-run - a
 * correct round trip must not perturb a single subsequent digest.
 */
std::vector<std::uint64_t>
monitoredNodeTrail(std::uint64_t roundtrip_at, bool *roundtrip_ok)
{
    node::NodeConfig config;
    config.hierarchy = node::HierarchyConfig::hierarchy1();
    config.workload = wl::benchmarkByName("lulesh");
    config.memOpsPerCore = 4000;
    config.warmupOpsPerCore = 2000;
    config.memorySystem = node::MemorySystemKind::kHeteroDmr;
    config.seed = 23;
    config.marginGuardBandMts = 400;
    config.monitoring.enabled = true;
    config.monitoring.samplingInterval = 2 * util::kTicksPerUs;
    config.monitoring.aggregationInterval = 5 * util::kTicksPerUs;
    config.monitoring.regionUpdateInterval = 15 * util::kTicksPerUs;
    util::checkOk(monitor::parseSchemeConfig(
        monitor::defaultPhaseAdaptiveSchemes(), &config.schemes));

    node::NodeSystem sys(config);
    monitor::RegionSampler *sampler = sys.regionSampler();
    monitor::SchemeEngine *engine = sys.schemeEngine();
    std::vector<std::uint64_t> trail;
    sampler->setAggregationObserver([&](std::uint64_t index) {
        if (roundtrip_at != 0 && index == roundtrip_at) {
            snapshot::Serializer out;
            sampler->saveState(out);
            engine->saveState(out);
            snapshot::Deserializer in(out.data());
            const bool ok = sampler->restoreState(in) &&
                            engine->restoreState(in) && in.ok() &&
                            in.remaining() == 0;
            if (roundtrip_ok)
                *roundtrip_ok = ok;
        }
        trail.push_back(sampler->digest() ^
                        (engine->digest() * 0x9e3779b97f4a7c15ULL));
    });
    sys.run();
    return trail;
}

void
auditMonitoredNode()
{
    std::printf("-- monitored node (DAMON sampler + schemes) --\n");
    const std::vector<std::uint64_t> first = monitoredNodeTrail(0, nullptr);
    const std::vector<std::uint64_t> second = monitoredNodeTrail(0, nullptr);
    check(first.size() > 4, "monitor trail long enough to bite");
    check(first == second, "monitored run twice: digest trails identical");

    bool roundtrip_ok = false;
    const std::vector<std::uint64_t> resumed =
        monitoredNodeTrail(3, &roundtrip_ok);
    check(roundtrip_ok, "mid-run monitor save/restore round-trips");
    check(first == resumed,
          "monitor round trip leaves the digest trail bit-identical");
}

} // namespace

int
main()
{
    traces::JobTraceModel model;
    model.numJobs = 2000;
    model.systemNodes = 192;
    model.spanSeconds = 10 * 86400.0;
    const auto jobs =
        traces::GrizzlyTraceGenerator(model, 11).generate();

    auditConfig(shortConfig(false), jobs, "fault-free, margin-aware");
    auditConfig(shortConfig(true), jobs,
                "faulted, margin-unaware, checkpointed");
    auditCorruptionRejection(shortConfig(false), jobs);
    auditMonitoredNode();

    if (g_failures > 0) {
        std::printf("\n%d check(s) FAILED\n", g_failures);
        return 1;
    }
    std::printf("\nall determinism checks passed\n");
    return 0;
}
