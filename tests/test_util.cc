/**
 * @file
 * Unit and property tests for the util library: RNG determinism and
 * distribution moments, streaming statistics, percentiles, confidence
 * intervals, histograms, tables, and unit conversions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hh"
#include "util/stats.hh"
#include "util/status.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace
{

using namespace hdmr::util;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 7u);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.normal(10.0, 3.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stdev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.exponential(0.5));
    EXPECT_NEAR(stats.mean(), 2.0, 0.05);
}

TEST(Rng, PoissonMeanSmallAndLarge)
{
    Rng rng(17);
    RunningStats small, large;
    for (int i = 0; i < 100000; ++i) {
        small.add(static_cast<double>(rng.poisson(3.0)));
        large.add(static_cast<double>(rng.poisson(120.0)));
    }
    EXPECT_NEAR(small.mean(), 3.0, 0.05);
    EXPECT_NEAR(large.mean(), 120.0, 0.5);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(19);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(23);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 3);
}

TEST(RunningStats, MeanVarianceKnownValues)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng rng(29);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(5.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, ConfidenceIntervalShrinksWithSamples)
{
    Rng rng(31);
    RunningStats few, many;
    for (int i = 0; i < 100; ++i)
        few.add(rng.normal(0, 1));
    for (int i = 0; i < 10000; ++i)
        many.add(rng.normal(0, 1));
    EXPECT_GT(few.confidenceHalfWidth(0.99),
              many.confidenceHalfWidth(0.99));
}

TEST(Stats, InverseNormalCdfKnownQuantiles)
{
    EXPECT_NEAR(inverseNormalCdf(0.5), 0.0, 1e-9);
    EXPECT_NEAR(inverseNormalCdf(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(inverseNormalCdf(0.995), 2.575829, 1e-4);
    EXPECT_NEAR(inverseNormalCdf(0.025), -1.959964, 1e-4);
}

TEST(Stats, PercentileInterpolation)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

TEST(Stats, GeomeanOfSpeedups)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Histogram, BinningAndFractions)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_DOUBLE_EQ(h.total(), 10.0);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(h.binCount(i), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(5.0), 0.5);
}

TEST(Histogram, OutOfRangeClamped)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(4), 1.0);
}

TEST(Table, RendersAlignedAscii)
{
    Table t({"suite", "speedup"});
    t.row().cell("linpack").cell(1.24, 2);
    t.row().cell("hpcg").cell(1.19, 2);
    const std::string out = t.toString();
    EXPECT_NE(out.find("linpack"), std::string::npos);
    EXPECT_NE(out.find("1.24"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvEscapesCommas)
{
    Table t({"a", "b"});
    t.row().cell("x,y").cell("plain");
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
}

TEST(Units, DataRateToTck)
{
    EXPECT_EQ(dataRateToTck(3200), 625u);   // 1600 MHz clock
    EXPECT_EQ(dataRateToTck(2400), 833u);   // 1200 MHz clock
    EXPECT_EQ(dataRateToTck(4000), 500u);   // 2000 MHz clock
}

TEST(Units, BurstTicksScalesInversely)
{
    EXPECT_EQ(burstTicks(3200), 2500u); // 4 clocks at 625 ps
    EXPECT_LT(burstTicks(4000), burstTicks(3200));
}

TEST(Units, TimeConversions)
{
    EXPECT_EQ(nsToTicks(13.75), 13750u);
    EXPECT_EQ(usToTicks(7.8), 7800000u);
    EXPECT_DOUBLE_EQ(ticksToNs(625), 0.625);
}

TEST(Units, PeakBandwidth)
{
    EXPECT_DOUBLE_EQ(channelPeakBandwidth(3200), 25.6e9);
}

TEST(Status, CodeNamesCoverTheServiceVocabulary)
{
    EXPECT_STREQ(statusCodeName(StatusCode::kDeadlineExceeded),
                 "deadline_exceeded");
    EXPECT_STREQ(statusCodeName(StatusCode::kUnavailable),
                 "unavailable");
}

TEST(Status, ConstructorsCarryCodeAndFormattedMessage)
{
    const Status deadline =
        deadlineExceeded("request %d blew its %dus budget", 7, 250);
    EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(deadline.toString().find("request 7 blew its 250us"),
              std::string::npos);

    const Status busy = unavailable("queue full (%d)", 64);
    EXPECT_EQ(busy.code(), StatusCode::kUnavailable);
    EXPECT_NE(busy.toString().find("queue full (64)"),
              std::string::npos);
}

TEST(Status, OnlyUnavailableIsRetriable)
{
    // kDeadlineExceeded is deliberately NOT retriable: retrying work
    // that just timed out is the amplification retry budgets exist to
    // stop.  A fresh request (with a fresh deadline) is a new call.
    EXPECT_TRUE(isRetriable(StatusCode::kUnavailable));
    EXPECT_FALSE(isRetriable(StatusCode::kDeadlineExceeded));
    EXPECT_FALSE(isRetriable(StatusCode::kOk));
    EXPECT_FALSE(isRetriable(StatusCode::kInvalidArgument));
    EXPECT_FALSE(isRetriable(StatusCode::kDataLoss));

    EXPECT_TRUE(unavailable("busy").isRetriable());
    EXPECT_FALSE(deadlineExceeded("late").isRetriable());
    EXPECT_FALSE(Status{}.isRetriable()); // kOk is never retriable
}

TEST(Status, ResultCarriesValueOrStatus)
{
    const Result<int> good(42);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);

    const Result<int> bad(unavailable("later"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kUnavailable);
}

} // namespace
