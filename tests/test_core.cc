/**
 * @file
 * Tests for the Hetero-DMR core library: epoch guard budget math,
 * replication planning (usage fallbacks, rank policies, margin-aware
 * selection), and the mode controller's write path, self-refresh
 * parking, cleaning, and epoch fallback behaviour.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/epoch_guard.hh"
#include "core/mode_controller.hh"
#include "core/replication.hh"
#include "dram/controller.hh"
#include "sim/event_queue.hh"
#include "snapshot/serializer.hh"
#include "util/status.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::core;
using util::Tick;

// --------------------------------------------------------------------
// Epoch guard
// --------------------------------------------------------------------

TEST(EpochGuard, ThresholdMatchesPaperArithmetic)
{
    EpochGuardConfig config;
    // 2^64 / (1e9 years in hours) ~= 2.1e6 per hour.
    EXPECT_NEAR(static_cast<double>(config.errorThreshold()), 2.1e6,
                0.2e6);
}

TEST(EpochGuard, TripsOnlyPastThreshold)
{
    EpochGuardConfig config;
    config.mttSdcYears = 1.0e9;
    EpochGuard guard(config);
    const std::uint64_t threshold = config.errorThreshold();
    bool tripped = false;
    for (std::uint64_t i = 0; i <= threshold && !tripped; ++i)
        tripped = guard.recordError(1000);
    EXPECT_TRUE(tripped);
    EXPECT_EQ(guard.trips(), 1u);
    EXPECT_TRUE(guard.tripped(1000));
}

TEST(EpochGuard, ResetsAtEpochBoundary)
{
    EpochGuardConfig config;
    config.epochLength = 1000;
    config.mttSdcYears = 1.0e18; // tiny threshold
    EpochGuard guard(config);
    while (!guard.recordError(10)) {
    }
    EXPECT_TRUE(guard.tripped(10));
    EXPECT_FALSE(guard.tripped(1500)); // next epoch
    EXPECT_EQ(guard.errorsThisEpoch(), 0u);
    EXPECT_EQ(guard.epochEnd(1500), 2000u);
}

TEST(EpochGuard, MultiEpochRolloverAndTripClearing)
{
    EpochGuardConfig config;
    config.epochLength = util::kTicksPerSec; // 1-second epochs
    config.mttSdcYears = 5.8e10;             // ~10-error budget/epoch
    EpochGuard guard(config);
    const std::uint64_t threshold = config.errorThreshold();
    ASSERT_GE(threshold, 2u);
    ASSERT_LE(threshold, 1000u);

    // Stay at the threshold in epoch 0: no trip.
    for (std::uint64_t i = 0; i < threshold; ++i)
        EXPECT_FALSE(guard.recordError(0));
    EXPECT_FALSE(guard.tripped(0));

    // Rollover resets the count: the same sub-threshold volume in the
    // next epoch does not trip either.
    for (std::uint64_t i = 0; i < threshold; ++i)
        EXPECT_FALSE(guard.recordError(config.epochLength + 1));
    EXPECT_EQ(guard.errorsThisEpoch(), threshold);
    EXPECT_EQ(guard.totalErrors(), 2 * threshold);

    // One more error in the same epoch trips; the trip clears at the
    // next boundary.
    EXPECT_TRUE(guard.recordError(config.epochLength + 2));
    EXPECT_TRUE(guard.tripped(config.epochLength + 2));
    EXPECT_FALSE(guard.tripped(2 * config.epochLength + 1));
    EXPECT_EQ(guard.trips(), 1u);
}

TEST(EpochGuard, BoundaryErrorCountsTowardExactlyOneEpoch)
{
    // Regression pin for the boundary accounting: an error arriving at
    // exactly tick k*epochLength belongs to epoch k (the half-open
    // epoch [k*L, (k+1)*L)), never to epoch k-1, and never to both.
    EpochGuardConfig config;
    config.mttSdcYears = 4.0e14; // budget of a handful of errors/epoch
    EpochGuard guard(config);
    const util::Tick length = config.epochLength;
    const std::uint64_t threshold = config.errorThreshold();
    ASSERT_GE(threshold, 1u);
    ASSERT_LE(threshold, 100u);

    // Fill epoch 0 right up to its last tick.
    for (std::uint64_t i = 0; i < threshold + 1; ++i)
        guard.recordError(length - 1);
    EXPECT_TRUE(guard.tripped(length - 1));
    const std::uint64_t epoch0_errors = guard.errorsThisEpoch();

    // The boundary tick starts epoch 1: the per-epoch count restarts
    // at exactly 1 and the epoch-0 trip no longer applies.
    guard.recordError(length);
    EXPECT_EQ(guard.errorsThisEpoch(), 1u);
    EXPECT_EQ(guard.totalErrors(), epoch0_errors + 1);
    EXPECT_FALSE(guard.tripped(length));

    // And the epoch the boundary tick opens ends one full length on.
    EXPECT_EQ(guard.epochEnd(length), 2 * length);
    EXPECT_EQ(guard.epochEnd(length - 1), length);
}

TEST(EpochGuard, ThresholdScalesWithEpochLength)
{
    // The MTT-SDC target is global, so a half-hour epoch gets half the
    // hourly error budget and a two-hour epoch twice.
    EpochGuardConfig hourly;
    EpochGuardConfig half = hourly;
    half.epochLength = 1800ull * util::kTicksPerSec;
    EpochGuardConfig two_hour = hourly;
    two_hour.epochLength = 2ull * 3600ull * util::kTicksPerSec;

    EXPECT_NEAR(static_cast<double>(half.errorThreshold()),
                static_cast<double>(hourly.errorThreshold()) / 2.0,
                1.0);
    EXPECT_NEAR(static_cast<double>(two_hour.errorThreshold()),
                static_cast<double>(hourly.errorThreshold()) * 2.0,
                2.0);
}

// --------------------------------------------------------------------
// Replication planning
// --------------------------------------------------------------------

TEST(Replication, UsageFallbacks)
{
    using RM = ReplicationManager;
    EXPECT_EQ(RM::effectiveMode(ReplicationMode::kHeteroDmr,
                                MemoryUsage::kUnder25),
              ReplicationMode::kHeteroDmr);
    EXPECT_EQ(RM::effectiveMode(ReplicationMode::kHeteroDmr,
                                MemoryUsage::kOver50),
              ReplicationMode::kNone);
    EXPECT_EQ(RM::effectiveMode(ReplicationMode::kHeteroDmrFmr,
                                MemoryUsage::kUnder25),
              ReplicationMode::kHeteroDmrFmr);
    // "+FMR regresses to Hetero-DMR alone" between 25 and 50 %.
    EXPECT_EQ(RM::effectiveMode(ReplicationMode::kHeteroDmrFmr,
                                MemoryUsage::kUnder50),
              ReplicationMode::kHeteroDmr);
    EXPECT_EQ(RM::effectiveMode(ReplicationMode::kFmr,
                                MemoryUsage::kOver50),
              ReplicationMode::kNone);
}

TEST(Replication, HeteroDmrPlan)
{
    const auto plan =
        ReplicationManager::planChannel(ReplicationMode::kHeteroDmr);
    EXPECT_TRUE(plan.fastReads);
    EXPECT_EQ(plan.addressRanks, 2u);
    EXPECT_EQ(plan.selfRefreshMask, 0b0011u);
    // Reads go ONLY to the Free Module (ranks 2-3).
    const auto reads = plan.rankPolicy.readCandidates(0);
    ASSERT_EQ(reads.count, 1);
    EXPECT_EQ(reads.ranks[0], 2);
    // Writes broadcast to original + copy.
    const auto writes = plan.rankPolicy.writeTargets(1);
    ASSERT_EQ(writes.count, 2);
    EXPECT_EQ(writes.ranks[0], 1);
    EXPECT_EQ(writes.ranks[1], 3);
}

TEST(Replication, HeteroDmrFmrPlanHasTwoCopies)
{
    const auto plan =
        ReplicationManager::planChannel(ReplicationMode::kHeteroDmrFmr);
    EXPECT_EQ(plan.addressRanks, 1u);
    const auto reads = plan.rankPolicy.readCandidates(0);
    EXPECT_EQ(reads.count, 2);
    const auto writes = plan.rankPolicy.writeTargets(0);
    EXPECT_EQ(writes.count, 3); // original + both copies
}

TEST(Replication, FmrPlanReadsEitherCopy)
{
    const auto plan =
        ReplicationManager::planChannel(ReplicationMode::kFmr);
    EXPECT_FALSE(plan.fastReads);
    EXPECT_EQ(plan.selfRefreshMask, 0u);
    const auto reads = plan.rankPolicy.readCandidates(1);
    ASSERT_EQ(reads.count, 2);
    EXPECT_EQ(reads.ranks[0], 1);
    EXPECT_EQ(reads.ranks[1], 3);
}

TEST(Replication, MarginAwareSelection)
{
    EXPECT_EQ(ReplicationManager::chooseFreeModule({600, 1000}), 1u);
    EXPECT_EQ(ReplicationManager::channelMargin({600, 1000}), 1000u);
    EXPECT_EQ(ReplicationManager::nodeMargin({800, 600, 1000}), 600u);
}

TEST(Replication, PermanentFaultRemap)
{
    EXPECT_EQ(ReplicationManager::remapForPermanentFault(0, 2), 1u);
    EXPECT_EQ(ReplicationManager::remapForPermanentFault(1, 2), 0u);
}

// --------------------------------------------------------------------
// Mode controller
// --------------------------------------------------------------------

ModeControllerConfig
hdmrConfig()
{
    ModeControllerConfig config;
    config.specSetting = dram::MemorySetting::manufacturerSpec();
    config.fastSetting = dram::MemorySetting::exploitFreqLatMargins();
    config.plan =
        ReplicationManager::planChannel(ReplicationMode::kHeteroDmr);
    return config;
}

TEST(ModeController, BuildsHeterogeneousTiming)
{
    const auto cc =
        ModeController::buildControllerConfig(hdmrConfig(), 1);
    EXPECT_EQ(cc.readModeTiming.dataRateMts, 4000u);
    EXPECT_EQ(cc.writeModeTiming.dataRateMts, 3200u);
    EXPECT_EQ(cc.enterWriteModeLatency, util::usToTicks(1.0));
    EXPECT_EQ(cc.selfRefreshRankMask, 0b0011u);
    EXPECT_EQ(cc.writeDrainLow, 0u); // drain the whole batch
}

TEST(ModeController, BaselineUsesBusTurnaround)
{
    auto config = hdmrConfig();
    config.plan = ReplicationManager::planChannel(ReplicationMode::kNone);
    config.fastSetting = config.specSetting;
    const auto cc = ModeController::buildControllerConfig(config, 1);
    EXPECT_EQ(cc.enterWriteModeLatency, config.busTurnaround);
    EXPECT_EQ(cc.readModeTiming.dataRateMts, 3200u);
    EXPECT_EQ(cc.readErrorProbability, 0.0);
}

TEST(ModeController, EvictionsDrainThroughWriteMode)
{
    sim::EventQueue events;
    auto mc_config = hdmrConfig();
    auto cc = ModeController::buildControllerConfig(mc_config, 1);
    dram::MemoryController controller(events, cc);
    ModeController mode(events, controller, nullptr,
                        [](std::uint64_t) { return true; }, mc_config);

    // Push enough dirty evictions to trip the 90 % victim-cache fill.
    for (std::uint64_t i = 0; i < 2000; ++i)
        mode.handleDirtyEviction(0x100000 + 64 * i);
    events.run();
    EXPECT_GE(controller.stats().writeModeEntries, 1u);
    EXPECT_GT(controller.stats().writes, 1500u);
    // Broadcast writes touched both the original and copy ranks.
    EXPECT_EQ(controller.stats().writeRankOps,
              2 * controller.stats().writes);
    EXPECT_EQ(controller.mode(), dram::ChannelMode::kRead);
    EXPECT_TRUE(mode.writebackCache().empty());
}

TEST(ModeController, CleansLlcDuringWriteMode)
{
    sim::EventQueue events;
    auto mc_config = hdmrConfig();
    mc_config.cleanLinesPerWriteMode = 500;
    auto cc = ModeController::buildControllerConfig(mc_config, 1);
    dram::MemoryController controller(events, cc);

    cache::CacheConfig llc_config;
    llc_config.sizeBytes = 1 << 20;
    llc_config.ways = 16;
    cache::Cache llc(llc_config);
    // Age a dirty population, then a young clean one on top.
    for (std::uint64_t i = 0; i < 4096; ++i)
        llc.access(i * 64, true);
    for (std::uint64_t i = 4096; i < 16384; ++i)
        llc.access(i * 64, false);

    ModeController mode(events, controller, &llc,
                        [](std::uint64_t) { return true; }, mc_config);
    for (std::uint64_t i = 0; i < 2000; ++i)
        mode.handleDirtyEviction(0x4000000 + 64 * i);
    events.run();
    EXPECT_GT(mode.stats().cleanedLines, 0u);
    EXPECT_LE(mode.stats().cleanedLines, 500u);
}

TEST(ModeController, EpochTripFallsBackToSpec)
{
    sim::EventQueue events;
    auto mc_config = hdmrConfig();
    mc_config.readErrorProbability = 1.0; // every fast read errors
    mc_config.epochConfig.mttSdcYears = 1.0e15; // tiny error budget
    mc_config.epochConfig.epochLength = 10 * util::kTicksPerMs;
    auto cc = ModeController::buildControllerConfig(mc_config, 1);
    dram::MemoryController controller(events, cc);
    ModeController mode(events, controller, nullptr,
                        [](std::uint64_t) { return true; }, mc_config);

    for (int i = 0; i < 64; ++i) {
        dram::MemRequest request;
        request.address = 0x100000 + 64 * i;
        controller.enqueueRead(std::move(request));
        events.run(5 * util::kTicksPerMs); // stay inside the epoch
    }
    EXPECT_FALSE(mode.fastOperationEnabled());
    EXPECT_GE(mode.stats().epochTrips, 1u);
    EXPECT_GE(mode.stats().corrections, 1u);

    // Replication and fast operation resume at the next epoch.
    events.run(30 * util::kTicksPerMs);
    EXPECT_TRUE(mode.fastOperationEnabled());
}

// --------------------------------------------------------------------
// Recovery ladder
// --------------------------------------------------------------------

struct LadderRig
{
    sim::EventQueue events;
    ModeControllerConfig config;
    dram::MemoryController controller;
    ModeController mode;
    unsigned ueDeliveries = 0;

    explicit LadderRig(const ModeControllerConfig &mc_config)
        : config(mc_config),
          controller(events,
                     ModeController::buildControllerConfig(mc_config, 1)),
          mode(events, controller, nullptr,
               [](std::uint64_t) { return true; }, mc_config)
    {
        mode.setUncorrectableHandler([this] { ++ueDeliveries; });
    }
};

TEST(RecoveryLadder, DisabledLadderEscalatesImmediately)
{
    // retryAttempts = 0 is the seed behaviour: the first failed
    // recovery becomes an uncorrectable error with no retry rungs.
    LadderRig rig(hdmrConfig());
    rig.mode.injectUncorrectable();
    EXPECT_EQ(rig.mode.stats().uncorrectedErrors, 1u);
    EXPECT_EQ(rig.mode.stats().ladderRetries, 0u);
    EXPECT_EQ(rig.mode.stats().ladderRecoveries, 0u);
    EXPECT_EQ(rig.ueDeliveries, 1u);
}

TEST(RecoveryLadder, RetryAvertsEscalation)
{
    auto config = hdmrConfig();
    config.ladder.retryAttempts = 3;
    config.ladder.retryFailureProbability = 0.0; // retries always work
    LadderRig rig(config);

    rig.mode.injectUncorrectable();
    // The first rung recovered: no UE surfaced, one retry walked.
    EXPECT_EQ(rig.mode.stats().uncorrectedErrors, 0u);
    EXPECT_EQ(rig.mode.stats().ladderRetries, 1u);
    EXPECT_EQ(rig.mode.stats().ladderRecoveries, 1u);
    EXPECT_EQ(rig.ueDeliveries, 0u);

    // The retry re-read the original at specification, so the channel
    // is held at spec for the backoff window and resumes after it.
    EXPECT_FALSE(rig.mode.fastOperationEnabled());
    rig.events.run();
    EXPECT_TRUE(rig.mode.fastOperationEnabled());
}

TEST(RecoveryLadder, ExhaustedLadderEscalatesToUe)
{
    auto config = hdmrConfig();
    config.ladder.retryAttempts = 2;
    config.ladder.retryFailureProbability = 1.0; // retries never work
    LadderRig rig(config);

    rig.mode.injectUncorrectable();
    EXPECT_EQ(rig.mode.stats().ladderRetries, 2u);
    EXPECT_EQ(rig.mode.stats().ladderRecoveries, 0u);
    EXPECT_EQ(rig.mode.stats().uncorrectedErrors, 1u);
    EXPECT_EQ(rig.ueDeliveries, 1u);
    // Exponential backoff: rung 1 pays the base window, rung 2 twice
    // that (default factor 2).
    EXPECT_EQ(rig.mode.stats().ladderRetryTicks,
              config.ladder.retryBackoff * 3);
}

TEST(RecoveryLadder, ErrorBudgetDemotesChannel)
{
    auto config = hdmrConfig();
    config.ladder.errorBudgetWindow = util::kTicksPerSec;
    config.ladder.errorBudgetLimit = 4;
    LadderRig rig(config);
    const unsigned fast_before = rig.mode.fastRateMts();

    rig.mode.injectDetectedErrors(10);
    EXPECT_EQ(rig.mode.stats().budgetDemotions, 1u);
    EXPECT_EQ(rig.mode.stats().demotions, 1u);
    EXPECT_EQ(rig.mode.fastRateMts(),
              fast_before - config.quarantine.demoteStepMts);
}

TEST(RecoveryLadder, SlidingWindowForgetsOldErrors)
{
    auto config = hdmrConfig();
    config.ladder.errorBudgetWindow = 10 * util::kTicksPerMs;
    config.ladder.errorBudgetLimit = 4;
    LadderRig rig(config);

    // Budget-sized batch now: no demotion.
    rig.mode.injectDetectedErrors(4);
    EXPECT_EQ(rig.mode.stats().budgetDemotions, 0u);

    // Let the window slide past those arrivals; the same batch again
    // still fits the budget because the old errors have aged out.
    sim::CallbackEvent advance([] {});
    rig.events.schedule(&advance, 50 * util::kTicksPerMs);
    rig.events.run();
    rig.mode.injectDetectedErrors(4);
    EXPECT_EQ(rig.mode.stats().budgetDemotions, 0u);

    // One more inside the fresh window blows the budget.
    rig.mode.injectDetectedErrors(1);
    EXPECT_EQ(rig.mode.stats().budgetDemotions, 1u);
}

TEST(RecoveryLadder, StateRoundTripsThroughSnapshot)
{
    auto config = hdmrConfig();
    config.ladder.retryAttempts = 2;
    config.ladder.retryFailureProbability = 0.5;
    config.ladder.errorBudgetWindow = util::kTicksPerSec;
    config.ladder.errorBudgetLimit = 100;
    LadderRig source(config);
    source.mode.injectDetectedErrors(5); // while still running fast
    for (int i = 0; i < 8; ++i)
        source.mode.injectUncorrectable();

    snapshot::Serializer out;
    source.mode.saveState(out);

    LadderRig target(config);
    snapshot::Deserializer in(out.data());
    ASSERT_TRUE(target.mode.restoreState(in));
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(in.remaining(), 0u);

    // Restored ladder statistics match, and the private retry stream
    // resumes where the source left off: the next injection produces
    // identical outcomes on both controllers.
    EXPECT_EQ(target.mode.stats().ladderRetries,
              source.mode.stats().ladderRetries);
    EXPECT_EQ(target.mode.stats().ladderRecoveries,
              source.mode.stats().ladderRecoveries);
    EXPECT_EQ(target.mode.stats().uncorrectedErrors,
              source.mode.stats().uncorrectedErrors);
    for (int i = 0; i < 8; ++i) {
        source.mode.injectUncorrectable();
        target.mode.injectUncorrectable();
    }
    EXPECT_EQ(target.mode.stats().ladderRecoveries,
              source.mode.stats().ladderRecoveries);
    EXPECT_EQ(target.mode.stats().uncorrectedErrors,
              source.mode.stats().uncorrectedErrors);
}

// --------------------------------------------------------------------
// Online guard-band recalibration
// --------------------------------------------------------------------

ModeControllerConfig
recalConfig()
{
    auto config = hdmrConfig();
    config.recalibration.windowTicks = util::kTicksPerMs;
    config.recalibration.targetErrorsPerWindow = 4.0;
    config.recalibration.demoteBand = 2.0;   // demote evidence: > 8
    config.recalibration.promoteBand = 0.25; // promote evidence: < 1
    config.recalibration.hysteresisWindows = 2;
    return config;
}

TEST(Recalibration, ValidateRejectsBadPolicy)
{
    const auto expect_invalid = [](const util::Status &status,
                                   const char *field) {
        EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument)
            << status.message();
        EXPECT_NE(status.message().find(field), std::string::npos)
            << status.message();
    };
    RecalibrationPolicy policy;
    policy.targetErrorsPerWindow = -1.0;
    expect_invalid(policy.validate(), "targetErrorsPerWindow");
    policy = RecalibrationPolicy{};
    policy.demoteBand = 0.0;
    expect_invalid(policy.validate(), "demoteBand");
    policy = RecalibrationPolicy{};
    policy.promoteBand = policy.demoteBand; // dead band collapsed
    expect_invalid(policy.validate(), "promoteBand");
    policy = RecalibrationPolicy{};
    policy.hysteresisWindows = 0;
    expect_invalid(policy.validate(), "hysteresisWindows");
    policy = RecalibrationPolicy{};
    policy.probeFailureProbability = 1.5;
    expect_invalid(policy.validate(), "probeFailureProbability");
}

TEST(Recalibration, DisabledByDefaultMatchesSeed)
{
    // windowTicks = 0 schedules nothing: no windows, no demotions, and
    // an event queue that still drains to empty.
    LadderRig rig(hdmrConfig());
    rig.mode.injectDetectedErrors(100);
    rig.events.run();
    EXPECT_EQ(rig.mode.stats().recalWindows, 0u);
    EXPECT_EQ(rig.mode.stats().recalDemotions, 0u);
    EXPECT_EQ(rig.mode.fastRateMts(), rig.mode.qualifiedFastRateMts());
}

TEST(Recalibration, OscillationExactlyAtThresholdDoesNotFlap)
{
    // The satellite case: a rate sitting *exactly* on the demote
    // threshold every window.  The comparisons are strict, so at-
    // threshold windows are in-band and the operating point must not
    // move at all.
    LadderRig rig(recalConfig());
    const Tick w = rig.config.recalibration.windowTicks;
    for (int k = 0; k < 8; ++k) {
        rig.events.run(k * w + w / 2);
        rig.mode.injectDetectedErrors(8); // observed == target * band
    }
    rig.events.run(8 * w + w / 4);
    EXPECT_GE(rig.mode.stats().recalWindows, 8u);
    EXPECT_EQ(rig.mode.stats().recalDemotions +
                  rig.mode.stats().recalPromotions,
              0u);
    EXPECT_EQ(rig.mode.fastRateMts(), rig.mode.qualifiedFastRateMts());
}

TEST(Recalibration, AlternatingWindowsNeverMeetHysteresis)
{
    // One window above the band, the next quiet, repeatedly: the
    // hysteresis depth of 2 is never met, so the transition count is
    // bounded at zero however long the oscillation runs.
    LadderRig rig(recalConfig());
    const Tick w = rig.config.recalibration.windowTicks;
    for (int k = 0; k < 12; ++k) {
        rig.events.run(k * w + w / 2);
        rig.mode.injectDetectedErrors(k % 2 == 0 ? 9 : 0);
    }
    rig.events.run(12 * w + w / 4);
    EXPECT_GE(rig.mode.stats().recalWindows, 12u);
    EXPECT_EQ(rig.mode.stats().recalDemotions +
                  rig.mode.stats().recalPromotions,
              0u);
    EXPECT_EQ(rig.mode.fastRateMts(), rig.mode.qualifiedFastRateMts());
}

TEST(Recalibration, SustainedDriftDemotesThenQuietEarnsPromotion)
{
    LadderRig rig(recalConfig());
    const Tick w = rig.config.recalibration.windowTicks;
    const unsigned qualified = rig.mode.qualifiedFastRateMts();
    const unsigned step = rig.config.quarantine.demoteStepMts;

    // Two consecutive windows above the band: one demotion, exactly at
    // the hysteresis depth.
    for (int k = 0; k < 2; ++k) {
        rig.events.run(k * w + w / 2);
        rig.mode.injectDetectedErrors(9);
    }
    rig.events.run(2 * w + w / 4);
    EXPECT_EQ(rig.mode.stats().recalDemotions, 1u);
    EXPECT_EQ(rig.mode.fastRateMts(), qualified - step);

    // Two quiet windows below the promote band: a re-qualification
    // probe runs (paying its downtime) and promotes the step back.
    rig.events.run(4 * w + w / 4);
    EXPECT_EQ(rig.mode.stats().recalPromotions, 1u);
    EXPECT_EQ(rig.mode.stats().probeTicks,
              rig.config.recalibration.probeDowntime);
    EXPECT_EQ(rig.mode.fastRateMts(), qualified);

    // Further quiet windows at the qualified rate change nothing: the
    // qualified rate is the promotion ceiling.
    rig.events.run(8 * w + w / 4);
    EXPECT_EQ(rig.mode.stats().recalPromotions, 1u);
    EXPECT_EQ(rig.mode.fastRateMts(), qualified);
}

TEST(Recalibration, FailedProbeBlocksPromotion)
{
    auto config = recalConfig();
    config.recalibration.probeFailureProbability = 1.0;
    LadderRig rig(config);
    const Tick w = config.recalibration.windowTicks;
    const unsigned step = config.quarantine.demoteStepMts;

    rig.mode.demote(); // external demotion; channel now below qualified
    rig.events.run(6 * w + w / 4); // quiet windows: probes keep failing
    EXPECT_GE(rig.mode.stats().recalProbeFailures, 1u);
    EXPECT_EQ(rig.mode.stats().recalPromotions, 0u);
    EXPECT_EQ(rig.mode.fastRateMts(),
              rig.mode.qualifiedFastRateMts() - step);
}

TEST(Recalibration, EscalatesWhenDriftOutrunsRecalibration)
{
    auto config = recalConfig();
    config.recalibration.hysteresisWindows = 1;
    config.recalibration.escalateAfterDemotions = 2;
    LadderRig rig(config);
    const Tick w = config.recalibration.windowTicks;

    // Persistently storming error rate: every window demotes, and the
    // second consecutive demotion judges drift to be outrunning the
    // loop - the channel is handed to the quarantine ladder for good.
    for (int k = 0; k < 4; ++k) {
        rig.events.run(k * w + w / 2);
        rig.mode.injectDetectedErrors(9);
    }
    rig.events.run(4 * w + w / 4);
    EXPECT_EQ(rig.mode.stats().recalEscalations, 1u);
    EXPECT_TRUE(rig.mode.quarantined());
    EXPECT_EQ(rig.mode.stats().quarantines, 1u);
    EXPECT_EQ(rig.mode.fastRateMts(),
              rig.config.specSetting.dataRateMts);
    EXPECT_FALSE(rig.mode.fastOperationEnabled());
}

TEST(Recalibration, StateSurvivesSnapshotBitIdentically)
{
    const auto config = recalConfig();
    const Tick w = config.recalibration.windowTicks;
    LadderRig source(config);

    // Drive the source into the middle of a demote streak with a
    // partially filled window: one above-band window behind it, three
    // errors into the next.
    source.events.run(w / 2);
    source.mode.injectDetectedErrors(9);
    source.events.run(w + w / 2);
    source.mode.injectDetectedErrors(3);

    snapshot::Serializer out;
    source.mode.saveState(out);

    // The target advances its clock to the same simulated time first
    // (its pre-restore windows fire empty and are overwritten), so the
    // restored controller re-derives the same next window boundary.
    LadderRig target(config);
    target.events.run(w + w / 2);
    snapshot::Deserializer in(out.data());
    ASSERT_TRUE(target.mode.restoreState(in));
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(in.remaining(), 0u);

    // Bit-identity at the restore point...
    snapshot::Serializer source_bytes;
    source.mode.saveState(source_bytes);
    snapshot::Serializer target_bytes;
    target.mode.saveState(target_bytes);
    EXPECT_EQ(source_bytes.data(), target_bytes.data());

    // ...and after both controllers live through the same future: the
    // streak completes and both demote at the same window.
    source.mode.injectDetectedErrors(6);
    target.mode.injectDetectedErrors(6);
    source.events.run(2 * w + w / 4);
    target.events.run(2 * w + w / 4);
    EXPECT_EQ(source.mode.stats().recalDemotions, 1u);
    EXPECT_EQ(target.mode.stats().recalDemotions, 1u);
    EXPECT_EQ(source.mode.fastRateMts(), target.mode.fastRateMts());

    snapshot::Serializer source_final;
    source.mode.saveState(source_final);
    snapshot::Serializer target_final;
    target.mode.saveState(target_final);
    EXPECT_EQ(source_final.data(), target_final.data());
}

TEST(Recalibration, RestoreRejectsDifferentQualifiedRate)
{
    const auto config = recalConfig();
    LadderRig source(config);
    snapshot::Serializer out;
    source.mode.saveState(out);

    auto other = config;
    other.fastSetting.dataRateMts -= 400; // qualified at a lower rate
    LadderRig target(other);
    snapshot::Deserializer in(out.data());
    EXPECT_FALSE(target.mode.restoreState(in));
    EXPECT_FALSE(in.ok());
}

} // namespace
