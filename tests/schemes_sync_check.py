#!/usr/bin/env python3
"""Fail if the checked-in scheme file drifts from the compiled default.

Usage: schemes_sync_check.py <fig19_monitor-binary> <phase_adaptive.schemes>

monitor::defaultPhaseAdaptiveSchemes() is the source of truth; the
copy under schemas/schemes/ exists so operators can read and fork the
policy without a checkout of the sources.  Regenerate the copy with:

    fig19_monitor --dump-schemes > schemas/schemes/phase_adaptive.schemes
"""

import subprocess
import sys


def main() -> int:
    binary, checked_in = sys.argv[1], sys.argv[2]
    compiled = subprocess.run(
        [binary, "--dump-schemes"], check=True,
        stdout=subprocess.PIPE).stdout.decode()
    with open(checked_in, encoding="utf-8") as f:
        shipped = f.read()
    if compiled == shipped:
        print("ok: %s matches the compiled default (%d bytes)" %
              (checked_in, len(shipped)))
        return 0
    print("FAIL: %s has drifted from defaultPhaseAdaptiveSchemes(); "
          "regenerate it with 'fig19_monitor --dump-schemes'" %
          checked_in)
    import difflib
    sys.stdout.writelines(difflib.unified_diff(
        shipped.splitlines(keepends=True),
        compiled.splitlines(keepends=True),
        fromfile=checked_in, tofile="--dump-schemes"))
    return 1


if __name__ == "__main__":
    sys.exit(main())
