/**
 * @file
 * Tests for the cache subsystem: set-associative LRU behaviour, dirty
 * tracking, LRU-first cleaning with depth limits, victim write-back
 * cache semantics, and the prefetchers' stream detection and auto
 * turn-off.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "cache/writeback_cache.hh"
#include "util/rng.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::cache;

CacheConfig
smallCache(unsigned ways = 4, std::uint64_t size = 16 * 1024)
{
    CacheConfig config;
    config.sizeBytes = size;
    config.ways = ways;
    return config;
}

TEST(Cache, HitAfterMiss)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.probe(0x1000));
}

TEST(Cache, LruEvictionOrder)
{
    // 4-way set: fill 4 lines in one set, touch the first, then insert
    // a fifth - the second-oldest must be evicted.
    Cache cache(smallCache(4));
    const std::uint64_t sets = cache.config().numSets();
    const std::uint64_t stride = sets * 64; // same set, new tag
    for (int i = 0; i < 4; ++i)
        cache.access(i * stride, false);
    cache.access(0, false); // refresh line 0
    cache.access(4 * stride, false);
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(1 * stride)); // LRU victim
}

TEST(Cache, DirtyEvictionReportsVictim)
{
    Cache cache(smallCache(2));
    const std::uint64_t stride = cache.config().numSets() * 64;
    cache.access(0, true); // dirty
    cache.access(stride, false);
    const auto result = cache.access(2 * stride, false);
    EXPECT_TRUE(result.evictedDirty);
    EXPECT_EQ(result.victimAddress, 0u);
    EXPECT_EQ(cache.dirtyLines(), 0u);
}

TEST(Cache, DirtyLineCountTracksState)
{
    Cache cache(smallCache());
    cache.access(0x100, true);
    cache.access(0x200, true);
    cache.access(0x100, true); // already dirty
    EXPECT_EQ(cache.dirtyLines(), 2u);
    EXPECT_TRUE(cache.invalidate(0x100));
    EXPECT_EQ(cache.dirtyLines(), 1u);
    EXPECT_FALSE(cache.invalidate(0x999000));
}

TEST(Cache, FillMergesDirtyBit)
{
    Cache cache(smallCache());
    cache.fill(0x400, false, true);
    EXPECT_EQ(cache.dirtyLines(), 0u);
    cache.fill(0x400, true, false);
    EXPECT_EQ(cache.dirtyLines(), 1u);
}

TEST(Cache, PrefetchHitCredited)
{
    Cache cache(smallCache());
    cache.fill(0x800, false, true);
    const auto result = cache.access(0x800, false);
    EXPECT_TRUE(result.hit);
    EXPECT_TRUE(result.prefetchHit);
    // Second touch is no longer a first use.
    EXPECT_FALSE(cache.access(0x800, false).prefetchHit);
    EXPECT_EQ(cache.prefetchUsefulCount(), 1u);
}

TEST(Cache, CleanLruDirtyLinesRespectsFilterAndBudget)
{
    Cache cache(smallCache(8, 64 * 1024));
    for (std::uint64_t i = 0; i < 256; ++i)
        cache.access(i * 64, true);
    std::vector<std::uint64_t> written;
    const std::size_t cleaned = cache.cleanLruDirtyLines(
        100, [](std::uint64_t addr) { return addr % 128 == 0; },
        [&](std::uint64_t addr) { written.push_back(addr); });
    EXPECT_EQ(cleaned, written.size());
    EXPECT_LE(cleaned, 100u);
    for (const auto addr : written)
        EXPECT_EQ(addr % 128, 0u);
    EXPECT_EQ(cache.dirtyLines(), 256 - cleaned);
}

TEST(Cache, CleanDepthLimitSkipsYoungLines)
{
    // One set, 4 ways, all dirty; depth 1 may only clean the oldest.
    Cache cache(smallCache(4, 4 * 64));
    const std::uint64_t stride = cache.config().numSets() * 64;
    for (int i = 0; i < 4; ++i)
        cache.access(i * stride, true);
    std::vector<std::uint64_t> written;
    cache.cleanLruDirtyLines(
        16, nullptr,
        [&](std::uint64_t addr) { written.push_back(addr); }, 1);
    ASSERT_EQ(written.size(), 1u);
    EXPECT_EQ(written.front(), 0u); // the LRU line
}

// --------------------------------------------------------------------
// Victim write-back cache
// --------------------------------------------------------------------

TEST(WritebackCache, InsertPopFifoish)
{
    WritebackCache wb;
    EXPECT_TRUE(wb.empty());
    EXPECT_TRUE(wb.insert(0x1000));
    EXPECT_TRUE(wb.insert(0x2000));
    EXPECT_EQ(wb.occupancy(), 2u);
    EXPECT_TRUE(wb.pop().has_value());
    EXPECT_TRUE(wb.pop().has_value());
    EXPECT_FALSE(wb.pop().has_value());
}

TEST(WritebackCache, CoalescesDuplicates)
{
    WritebackCache wb;
    EXPECT_TRUE(wb.insert(0x40));
    EXPECT_TRUE(wb.insert(0x40));
    EXPECT_EQ(wb.occupancy(), 1u);
}

TEST(WritebackCache, RejectsWhenSetFull)
{
    WritebackCacheConfig config;
    config.sizeBytes = 2 * 64; // 2 entries
    config.ways = 2;           // single set
    WritebackCache wb(config);
    EXPECT_TRUE(wb.insert(0x000));
    EXPECT_TRUE(wb.insert(0x040));
    EXPECT_FALSE(wb.insert(0x080)); // spill to the write buffer
    EXPECT_EQ(wb.rejects(), 1u);
}

TEST(WritebackCache, PaperGeometry)
{
    WritebackCache wb;
    EXPECT_EQ(wb.capacity(), 2048u); // 128 KB / 64 B
}

TEST(WritebackCache, RemoveDropsEntry)
{
    WritebackCache wb;
    wb.insert(0x1000);
    EXPECT_TRUE(wb.remove(0x1000));
    EXPECT_FALSE(wb.remove(0x1000));
    EXPECT_TRUE(wb.empty());
}

// --------------------------------------------------------------------
// Prefetchers
// --------------------------------------------------------------------

TEST(StridePrefetcher, DetectsSingleStream)
{
    StridePrefetcher prefetcher(4);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 8; ++i)
        prefetcher.observeMiss(0x10000 + i * 64, out);
    ASSERT_GE(out.size(), 4u);
    // Predictions run ahead of the stream at the detected stride.
    EXPECT_EQ(out[out.size() - 4] % 64, 0u);
}

TEST(StridePrefetcher, TracksInterleavedStreams)
{
    // Two interleaved streams in distant regions must both train -
    // this is the stream-table property a single-entry detector lacks.
    StridePrefetcher prefetcher(2);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 16; ++i) {
        prefetcher.observeMiss(0x1000000 + i * 64, out);
        prefetcher.observeMiss(0x9000000 + i * 256, out);
    }
    EXPECT_GT(prefetcher.issued(), 20u);
}

TEST(StridePrefetcher, NoPredictionsForRandomStream)
{
    StridePrefetcher prefetcher(4);
    util::Rng rng(11);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 200; ++i)
        prefetcher.observeMiss(rng.next() % (1ull << 30), out);
    EXPECT_LT(prefetcher.issued(), 40u);
}

TEST(NextLinePrefetcher, EmitsNextLine)
{
    NextLinePrefetcher prefetcher;
    std::vector<std::uint64_t> out;
    prefetcher.observeMiss(0x4000, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x4040u);
}

TEST(NextLinePrefetcher, AutoTurnOffWhenUseless)
{
    NextLinePrefetcher prefetcher;
    std::vector<std::uint64_t> out;
    // Never credit a use: after the check interval it must disable.
    for (int i = 0; i < 3000 && prefetcher.enabled(); ++i)
        prefetcher.observeMiss(0x10000 + i * 4096, out);
    EXPECT_FALSE(prefetcher.enabled());
}

TEST(NextLinePrefetcher, StaysOnWhenUseful)
{
    NextLinePrefetcher prefetcher;
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 3000; ++i) {
        prefetcher.observeMiss(0x10000 + i * 64, out);
        prefetcher.creditUse();
    }
    EXPECT_TRUE(prefetcher.enabled());
}

} // namespace
