/**
 * @file
 * Tests for heterogeneous-reliability placement: the deterministic
 * per-job criticality model, the placement-policy semantics
 * (eligibility, replicated share, graceful-degradation outcomes),
 * the criticality-split UE accounting in the cluster simulator, and
 * snapshot/resume bit-identity while placement state is active.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "core/placement.hh"
#include "sched/cluster_sim.hh"
#include "snapshot/digest.hh"
#include "traces/job_trace.hh"
#include "util/status.hh"
#include "workloads/criticality.hh"

namespace
{

using namespace hdmr;
using core::PlacementMode;
using core::PlacementPolicy;
using core::UeOutcome;

// ---------------------------------------------------------------------
// Criticality model
// ---------------------------------------------------------------------

TEST(CriticalityModel, SameSeedAssignsIdentically)
{
    const wl::CriticalityConfig config;
    wl::CriticalityModel a(config);
    wl::CriticalityModel b(config);
    for (std::uint32_t job = 0; job < 2000; ++job) {
        const wl::JobCriticality ca = a.jobCriticality(job);
        const wl::JobCriticality cb = b.jobCriticality(job);
        ASSERT_EQ(ca.appClass, cb.appClass);
        ASSERT_EQ(ca.tolerantFraction, cb.tolerantFraction);
        for (std::uint64_t page = 0; page < 8; ++page) {
            ASSERT_EQ(a.pageTolerant(job, page, ca.tolerantFraction),
                      b.pageTolerant(job, page, cb.tolerantFraction));
        }
    }
}

TEST(CriticalityModel, DifferentSeedReassigns)
{
    const wl::CriticalityConfig config;
    wl::CriticalityConfig reseeded = config;
    reseeded.seed ^= 1;
    wl::CriticalityModel a(config);
    wl::CriticalityModel b(reseeded);
    unsigned differing = 0;
    for (std::uint32_t job = 0; job < 2000; ++job) {
        const wl::JobCriticality ca = a.jobCriticality(job);
        const wl::JobCriticality cb = b.jobCriticality(job);
        differing += (ca.appClass != cb.appClass ||
                      ca.tolerantFraction != cb.tolerantFraction)
                         ? 1
                         : 0;
    }
    EXPECT_GT(differing, 1000u);
}

TEST(CriticalityModel, ClassMixAndJitterMatchConfig)
{
    const wl::CriticalityConfig config;
    wl::CriticalityModel model(config);
    std::array<unsigned, wl::kAppClassCount> counts = {};
    constexpr std::uint32_t kJobs = 20000;
    for (std::uint32_t job = 0; job < kJobs; ++job) {
        const wl::JobCriticality crit = model.jobCriticality(job);
        ASSERT_LT(crit.appClass, wl::kAppClassCount);
        ++counts[crit.appClass];
        const double mean = config.tolerantMean[crit.appClass];
        EXPECT_GE(crit.tolerantFraction,
                  std::max(0.0, mean - config.tolerantJitter));
        EXPECT_LE(crit.tolerantFraction,
                  std::min(1.0, mean + config.tolerantJitter));
    }
    for (unsigned cls = 0; cls < wl::kAppClassCount; ++cls) {
        EXPECT_NEAR(static_cast<double>(counts[cls]) / kJobs,
                    config.classWeights[cls], 0.02);
    }
}

TEST(CriticalityModel, PageDrawHonoursExtremesAndFraction)
{
    const std::uint64_t seed = 0xfeed;
    unsigned tolerant = 0;
    for (std::uint64_t page = 0; page < 4000; ++page) {
        EXPECT_FALSE(wl::pageIsTolerant(seed, 7, page, 0.0));
        EXPECT_TRUE(wl::pageIsTolerant(seed, 7, page, 1.0));
        tolerant += wl::pageIsTolerant(seed, 7, page, 0.6) ? 1 : 0;
    }
    EXPECT_NEAR(tolerant / 4000.0, 0.6, 0.05);
}

TEST(CriticalityConfig, DigestSensitiveToEveryField)
{
    const wl::CriticalityConfig base;
    const std::uint64_t digest = base.digest();

    wl::CriticalityConfig c = base;
    c.seed ^= 1;
    EXPECT_NE(c.digest(), digest);
    c = base;
    c.classWeights = {0.30, 0.45, 0.25};
    EXPECT_NE(c.digest(), digest);
    c = base;
    c.tolerantMean[2] = 0.25;
    EXPECT_NE(c.digest(), digest);
    c = base;
    c.tolerantJitter = 0.05;
    EXPECT_NE(c.digest(), digest);
}

void
expectInvalid(const hdmr::util::Status &status, const char *field)
{
    EXPECT_EQ(status.code(), hdmr::util::StatusCode::kInvalidArgument)
        << status.message();
    EXPECT_NE(status.message().find(field), std::string::npos)
        << status.message();
}

TEST(Criticality, ValidateNamesTheOffendingField)
{
    wl::CriticalityConfig bad;
    bad.classWeights = {0.5, 0.5, 0.5};
    expectInvalid(bad.validate(), "classWeights");

    bad = wl::CriticalityConfig{};
    bad.classWeights[0] = -0.1;
    expectInvalid(bad.validate(), "classWeights");

    bad = wl::CriticalityConfig{};
    bad.tolerantMean[1] = 1.5;
    expectInvalid(bad.validate(), "tolerantMean");

    bad = wl::CriticalityConfig{};
    bad.tolerantJitter = 0.75;
    expectInvalid(bad.validate(), "tolerantJitter");

    // Construction still dies (checkOk at the model boundary).
    bad = wl::CriticalityConfig{};
    bad.tolerantJitter = 0.75;
    EXPECT_DEATH(wl::CriticalityModel model(bad), "tolerantJitter");
}

// ---------------------------------------------------------------------
// Placement policy
// ---------------------------------------------------------------------

TEST(Placement, HeteroDmrKeepsSeedSemantics)
{
    PlacementPolicy policy; // default mode: kHeteroDmr
    for (const double tf : {0.0, 0.3, 0.75, 1.0}) {
        EXPECT_FALSE(policy.unreplicatedTolerant(tf));
        EXPECT_EQ(policy.replicatedShare(tf), 1.0);
        EXPECT_EQ(policy.tolerantStrikeProbability(tf), 0.0);
        EXPECT_TRUE(policy.marginEligible(0, tf));
        EXPECT_TRUE(policy.marginEligible(1, tf));
        EXPECT_FALSE(policy.marginEligible(2, tf));
    }
    EXPECT_EQ(policy.outcomeFor(true), UeOutcome::kKillRequeue);
    EXPECT_EQ(policy.outcomeFor(false), UeOutcome::kKillRequeue);
}

TEST(Placement, HetReliabilityWidensEligibility)
{
    PlacementPolicy policy;
    policy.mode = PlacementMode::kHetReliability;

    EXPECT_TRUE(policy.unreplicatedTolerant(0.2));
    EXPECT_FALSE(policy.unreplicatedTolerant(0.0));
    EXPECT_DOUBLE_EQ(policy.replicatedShare(0.75), 0.25);
    EXPECT_DOUBLE_EQ(policy.tolerantStrikeProbability(0.75), 0.75);

    // High-usage (>= 50 %) jobs: only a tolerant fraction above 1/3
    // shrinks the replicated footprint (0.75 x share) under the 50 %
    // copy headroom.
    EXPECT_FALSE(policy.marginEligible(2, 0.2));
    EXPECT_TRUE(policy.marginEligible(2, 0.5));
    // Low/mid-usage jobs stay eligible regardless.
    EXPECT_TRUE(policy.marginEligible(0, 0.0));
    EXPECT_TRUE(policy.marginEligible(1, 0.0));

    EXPECT_EQ(policy.outcomeFor(true), UeOutcome::kDegradeContinue);
    EXPECT_EQ(policy.outcomeFor(false), UeOutcome::kKillRequeue);
}

TEST(Placement, HybridThresholdSplitsJobs)
{
    PlacementPolicy policy;
    policy.mode = PlacementMode::kHybrid;

    // Below the threshold: full Hetero-DMR semantics.
    EXPECT_FALSE(policy.unreplicatedTolerant(0.49));
    EXPECT_EQ(policy.replicatedShare(0.49), 1.0);
    EXPECT_EQ(policy.tolerantStrikeProbability(0.49), 0.0);
    EXPECT_FALSE(policy.marginEligible(2, 0.49));

    // At/above the threshold: HRM semantics.
    EXPECT_TRUE(policy.unreplicatedTolerant(0.5));
    EXPECT_DOUBLE_EQ(policy.replicatedShare(0.5), 0.5);
    EXPECT_DOUBLE_EQ(policy.tolerantStrikeProbability(0.5), 0.5);
    EXPECT_TRUE(policy.marginEligible(2, 0.5));
}

TEST(Placement, DigestSensitiveToEveryField)
{
    const PlacementPolicy base;
    const std::uint64_t digest = base.digest();

    PlacementPolicy p = base;
    p.mode = PlacementMode::kHetReliability;
    EXPECT_NE(p.digest(), digest);
    p = base;
    p.hybridTolerantThreshold = 0.6;
    EXPECT_NE(p.digest(), digest);
    p = base;
    p.degradePenalty = 2.0;
    EXPECT_NE(p.digest(), digest);
    p = base;
    p.usageRepresentative[1] = 0.4;
    EXPECT_NE(p.digest(), digest);
}

TEST(Placement, ValidateNamesTheOffendingField)
{
    PlacementPolicy bad;
    bad.mode = static_cast<PlacementMode>(7);
    expectInvalid(bad.validate(), "PlacementPolicy.mode");

    bad = PlacementPolicy{};
    bad.hybridTolerantThreshold = 1.5;
    expectInvalid(bad.validate(),
                  "PlacementPolicy.hybridTolerantThreshold");

    bad = PlacementPolicy{};
    bad.degradePenalty = -1.0;
    expectInvalid(bad.validate(), "PlacementPolicy.degradePenalty");

    bad = PlacementPolicy{};
    bad.usageRepresentative = {0.5, 0.25, 0.75};
    expectInvalid(bad.validate(),
                  "PlacementPolicy.usageRepresentative");
}

// ---------------------------------------------------------------------
// Cluster-simulator integration
// ---------------------------------------------------------------------

std::vector<traces::Job>
placementTrace()
{
    traces::JobTraceModel model;
    model.numJobs = 800;
    model.spanSeconds = 7.0 * 86400.0;
    model.systemNodes = 64;
    traces::GrizzlyTraceGenerator generator(model, 42);
    auto trace = generator.generate();
    // Clamp node counts to the small test system.
    for (auto &job : trace)
        job.nodes = std::min(job.nodes, 64u);
    return trace;
}

sched::ClusterConfig
placementCluster(PlacementMode mode, double ue_per_hour = 1.0e-2)
{
    sched::ClusterConfig config;
    config.nodes = 64;
    config.heteroDmr = true;
    config.marginAware = true;
    config.placement.mode = mode;
    config.faults.intensity = 1.0;
    config.faults.uncorrectablePerHour = ue_per_hour;
    config.faults.horizonSeconds = 7.0 * 86400.0;
    return config;
}

TEST(ClusterPlacement, DefaultPlacementAccountingIsNeutral)
{
    // Under the default (Hetero-DMR) placement, the new accounting
    // must describe exactly the seed behaviour: every UE is critical
    // and kills, nothing degrades, and the copy tax is paid in full.
    const auto trace = placementTrace();
    const auto metrics =
        sched::ClusterSimulator(
            placementCluster(PlacementMode::kHeteroDmr))
            .run(trace);
    EXPECT_GT(metrics.ueInjected, 0u);
    EXPECT_EQ(metrics.tolerantUes, 0u);
    EXPECT_EQ(metrics.criticalUes, metrics.ueInjected);
    EXPECT_EQ(metrics.jobKills, metrics.ueInjected);
    EXPECT_EQ(metrics.jobsDegraded, 0u);
    EXPECT_EQ(metrics.pagesDegraded, 0u);
    EXPECT_EQ(metrics.dataQualityPenalty, 0.0);
    EXPECT_GT(metrics.dmrCopyNodeSeconds, 0.0);
    EXPECT_EQ(metrics.copyNodeSeconds, metrics.dmrCopyNodeSeconds);
}

TEST(ClusterPlacement, HetReliabilityReclaimsAndDegrades)
{
    const auto trace = placementTrace();
    const auto metrics =
        sched::ClusterSimulator(
            placementCluster(PlacementMode::kHetReliability))
            .run(trace);

    // Capacity: the unreplicated tolerant share shrinks the copy tax.
    EXPECT_GT(metrics.dmrCopyNodeSeconds, 0.0);
    EXPECT_LT(metrics.copyNodeSeconds, metrics.dmrCopyNodeSeconds);
    const double reclaimed =
        1.0 - metrics.copyNodeSeconds / metrics.dmrCopyNodeSeconds;
    EXPECT_GT(reclaimed, 0.3);

    // Degradation: tolerant strikes continue with a billed penalty,
    // and every UE lands in exactly one page-class bucket.
    EXPECT_GT(metrics.tolerantUes, 0u);
    EXPECT_GT(metrics.jobsDegraded, 0u);
    EXPECT_EQ(metrics.pagesDegraded, metrics.tolerantUes);
    EXPECT_GT(metrics.dataQualityPenalty, 0.0);
    EXPECT_EQ(metrics.ueInjected,
              metrics.tolerantUes + metrics.criticalUes);
    EXPECT_EQ(metrics.jobKills, metrics.criticalUes);
}

TEST(ClusterPlacement, AllTolerantControlNeverKills)
{
    const auto trace = placementTrace();
    sched::ClusterConfig config =
        placementCluster(PlacementMode::kHetReliability);
    config.criticality.tolerantMean = {1.0, 1.0, 1.0};
    config.criticality.tolerantJitter = 0.0;
    const auto metrics = sched::ClusterSimulator(config).run(trace);
    EXPECT_GT(metrics.ueInjected, 0u);
    EXPECT_EQ(metrics.jobKills, 0u);
    EXPECT_EQ(metrics.requeues, 0u);
    EXPECT_EQ(metrics.tolerantUes, metrics.ueInjected);
    EXPECT_EQ(metrics.jobsCompleted, trace.size());
}

TEST(ClusterPlacement, PlacementFingerprintedIntoConfigDigest)
{
    const auto dmr = placementCluster(PlacementMode::kHeteroDmr);
    auto hetrel = placementCluster(PlacementMode::kHetReliability);
    EXPECT_NE(sched::ClusterSimulator(dmr).configDigest(),
              sched::ClusterSimulator(hetrel).configDigest());

    auto reseeded = dmr;
    reseeded.criticality.seed ^= 1;
    EXPECT_NE(sched::ClusterSimulator(dmr).configDigest(),
              sched::ClusterSimulator(reseeded).configDigest());

    hetrel.placement.degradePenalty = 2.0;
    EXPECT_NE(
        sched::ClusterSimulator(
            placementCluster(PlacementMode::kHetReliability))
            .configDigest(),
        sched::ClusterSimulator(hetrel).configDigest());
}

TEST(ClusterPlacement, SnapshotResumeBitIdenticalWithPlacement)
{
    const auto trace = placementTrace();
    const auto config =
        placementCluster(PlacementMode::kHetReliability);

    sched::RunOptions options;
    options.digestEverySeconds = 21600.0;
    sched::ClusterSimulator straight(config);
    const sched::RunOutcome full = straight.run(trace, options);
    ASSERT_TRUE(full.completed);
    EXPECT_GT(full.metrics.tolerantUes, 0u);

    std::vector<std::uint8_t> image;
    sched::RunOptions stopping = options;
    stopping.stopAfterSeconds = 3.5 * 86400.0;
    stopping.snapshotSink =
        [&image](const std::vector<std::uint8_t> &state) {
            image = state;
        };
    sched::ClusterSimulator interrupted(config);
    const sched::RunOutcome partial =
        interrupted.run(trace, stopping);
    ASSERT_FALSE(partial.completed);
    ASSERT_FALSE(image.empty());

    sched::ClusterSimulator resumed_sim(config);
    const util::Status restored =
        resumed_sim.restoreState(image, trace);
    ASSERT_TRUE(restored.ok()) << restored.message();
    const sched::RunOutcome resumed = resumed_sim.resume(options);
    ASSERT_TRUE(resumed.completed);
    EXPECT_TRUE(
        sched::metricsIdentical(full.metrics, resumed.metrics));
    EXPECT_FALSE(snapshot::DigestTrail::firstDivergence(
                     full.digests, resumed.digests)
                     .has_value());
}

TEST(ClusterPlacement, SnapshotRejectsDifferentPlacement)
{
    const auto trace = placementTrace();
    std::vector<std::uint8_t> image;
    sched::RunOptions stopping;
    stopping.stopAfterSeconds = 2.0 * 86400.0;
    stopping.snapshotSink =
        [&image](const std::vector<std::uint8_t> &state) {
            image = state;
        };
    sched::ClusterSimulator source(
        placementCluster(PlacementMode::kHetReliability));
    source.run(trace, stopping);
    ASSERT_FALSE(image.empty());

    sched::ClusterSimulator other(
        placementCluster(PlacementMode::kHybrid));
    const util::Status status = other.restoreState(image, trace);
    EXPECT_EQ(status.code(),
              util::StatusCode::kFailedPrecondition)
        << status.toString();
    EXPECT_FALSE(status.message().empty());
}

} // namespace
