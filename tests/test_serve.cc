/**
 * @file
 * Tests for the advisor service stack (src/serve): the wire codec's
 * never-half-filled contract, the resilience primitives under fake
 * clocks and real concurrency (half-open single-probe exclusivity),
 * the engine's degradation ladder and warm-start snapshots, and the
 * service's admission control (LIFO shed ordering, queue expiry,
 * retry budget, drain-deadline expiry with a stuck in-flight
 * request).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/slow_path.hh"
#include "serve/advisor.hh"
#include "serve/resilience.hh"
#include "serve/service.hh"
#include "serve/wire.hh"
#include "snapshot/keeper.hh"
#include "snapshot/serializer.hh"
#include "telemetry/metrics.hh"
#include "util/status.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::serve;

// --------------------------------------------------------------------
// Wire codec
// --------------------------------------------------------------------

AdvisorRequest
sampleRequest()
{
    AdvisorRequest request;
    request.id = 77;
    request.deadlineMicros = 5000;
    request.allowCached = true;
    request.allowRollout = false;
    request.isRetry = true;
    request.mix = {{4, 0, 1200.0, 3.0}, {16, 2, 600.0, 1.0}};
    return request;
}

TEST(Wire, RequestRoundTrip)
{
    const AdvisorRequest request = sampleRequest();
    const std::vector<std::uint8_t> bytes = encodeRequest(request);
    AdvisorRequest parsed;
    ASSERT_TRUE(parseRequest(bytes.data(), bytes.size(), &parsed).ok());
    EXPECT_TRUE(parsed == request);
}

TEST(Wire, DecisionRoundTrip)
{
    AdvisorDecision decision;
    decision.id = 9;
    decision.marginGroup = 1;
    decision.heteroDmr = true;
    decision.quality = Quality::kExact;
    decision.expectedSpeedup = 1.08;
    decision.rolloutTurnaroundSeconds = 431.5;
    const std::vector<std::uint8_t> bytes = encodeDecision(decision);
    AdvisorDecision parsed;
    ASSERT_TRUE(
        parseDecision(bytes.data(), bytes.size(), &parsed).ok());
    EXPECT_TRUE(parsed == decision);
}

TEST(Wire, RequestRejectsForeignMagicAndVersion)
{
    std::vector<std::uint8_t> bytes = encodeRequest(sampleRequest());
    bytes[0] ^= 0xff;
    AdvisorRequest out;
    EXPECT_EQ(parseRequest(bytes.data(), bytes.size(), &out).code(),
              util::StatusCode::kFailedPrecondition);

    bytes = encodeRequest(sampleRequest());
    bytes[4] = 0x7f; // absurd version
    EXPECT_EQ(parseRequest(bytes.data(), bytes.size(), &out).code(),
              util::StatusCode::kFailedPrecondition);
}

TEST(Wire, RequestRejectsUnknownFlagBits)
{
    std::vector<std::uint8_t> bytes = encodeRequest(sampleRequest());
    bytes[24] |= 0x80; // flags byte follows magic+version+id+deadline
    AdvisorRequest out;
    EXPECT_EQ(parseRequest(bytes.data(), bytes.size(), &out).code(),
              util::StatusCode::kDataLoss);
}

TEST(Wire, RequestRejectsOversizedCountBeforeAllocating)
{
    std::vector<std::uint8_t> bytes = encodeRequest(sampleRequest());
    // Overwrite the class count (directly after the flags byte) with
    // a value far past the cap; the parser must refuse on the cap
    // check, not trust the count.
    bytes[25] = 0xff;
    bytes[26] = 0xff;
    bytes[27] = 0xff;
    bytes[28] = 0x7f;
    AdvisorRequest out;
    EXPECT_EQ(parseRequest(bytes.data(), bytes.size(), &out).code(),
              util::StatusCode::kResourceExhausted);
}

TEST(Wire, RequestRejectsTruncationAndTrailingGarbage)
{
    const std::vector<std::uint8_t> bytes =
        encodeRequest(sampleRequest());
    AdvisorRequest out;
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
        EXPECT_FALSE(parseRequest(bytes.data(), cut, &out).ok())
            << "truncation at " << cut << " accepted";

    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_EQ(parseRequest(padded.data(), padded.size(), &out).code(),
              util::StatusCode::kDataLoss);
}

TEST(Wire, FailedParseNeverHalfFillsTheOutput)
{
    AdvisorRequest out = sampleRequest();
    const AdvisorRequest before = out;
    std::vector<std::uint8_t> bytes = encodeRequest(sampleRequest());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        ASSERT_FALSE(parseRequest(bytes.data(), cut, &out).ok());
        ASSERT_TRUE(out == before) << "truncation at " << cut
                                   << " modified the output";
    }
}

TEST(Wire, RequestValidateRejectsSemanticNonsense)
{
    AdvisorRequest request = sampleRequest();
    request.mix.clear();
    EXPECT_EQ(request.validate().code(),
              util::StatusCode::kInvalidArgument);

    request = sampleRequest();
    request.mix[0].usageClass = 3;
    EXPECT_EQ(request.validate().code(),
              util::StatusCode::kInvalidArgument);

    request = sampleRequest();
    request.mix[0].nodes = 0;
    EXPECT_EQ(request.validate().code(),
              util::StatusCode::kInvalidArgument);

    request = sampleRequest();
    request.mix[0].weight = -1.0;
    EXPECT_EQ(request.validate().code(),
              util::StatusCode::kInvalidArgument);
}

TEST(Wire, FrameStreamWalk)
{
    std::vector<std::uint8_t> stream;
    const AdvisorRequest a = sampleRequest();
    AdvisorRequest b = sampleRequest();
    b.id = 78;
    appendFrame(encodeRequest(a), &stream);
    appendFrame(encodeRequest(b), &stream);

    std::size_t offset = 0;
    const std::uint8_t *payload = nullptr;
    std::size_t payload_size = 0;

    ASSERT_TRUE(nextFrame(stream.data(), stream.size(), &offset,
                          &payload, &payload_size)
                    .ok());
    ASSERT_NE(payload, nullptr);
    AdvisorRequest parsed;
    ASSERT_TRUE(parseRequest(payload, payload_size, &parsed).ok());
    EXPECT_TRUE(parsed == a);

    ASSERT_TRUE(nextFrame(stream.data(), stream.size(), &offset,
                          &payload, &payload_size)
                    .ok());
    ASSERT_NE(payload, nullptr);
    ASSERT_TRUE(parseRequest(payload, payload_size, &parsed).ok());
    EXPECT_TRUE(parsed == b);

    // Clean end of stream: kOk with a null payload.
    ASSERT_TRUE(nextFrame(stream.data(), stream.size(), &offset,
                          &payload, &payload_size)
                    .ok());
    EXPECT_EQ(payload, nullptr);
    EXPECT_EQ(offset, stream.size());
}

TEST(Wire, FrameRejectsTruncationAndOversizedLength)
{
    std::vector<std::uint8_t> stream;
    appendFrame(encodeRequest(sampleRequest()), &stream);

    std::size_t offset = 0;
    const std::uint8_t *payload = nullptr;
    std::size_t payload_size = 0;

    // Truncated length prefix.
    EXPECT_EQ(nextFrame(stream.data(), 3, &offset, &payload,
                        &payload_size)
                  .code(),
              util::StatusCode::kDataLoss);
    EXPECT_EQ(offset, 0u);

    // Truncated payload.
    EXPECT_EQ(nextFrame(stream.data(), stream.size() - 1, &offset,
                        &payload, &payload_size)
                  .code(),
              util::StatusCode::kDataLoss);
    EXPECT_EQ(offset, 0u);

    // A length field past the cap must be refused before being
    // trusted; the offset must not advance.
    std::vector<std::uint8_t> hostile = {0xff, 0xff, 0xff, 0xff};
    EXPECT_EQ(nextFrame(hostile.data(), hostile.size(), &offset,
                        &payload, &payload_size)
                  .code(),
              util::StatusCode::kResourceExhausted);
    EXPECT_EQ(offset, 0u);
}

// --------------------------------------------------------------------
// Deadline
// --------------------------------------------------------------------

TEST(Deadline, DefaultNeverExpires)
{
    const Deadline d;
    EXPECT_TRUE(d.unbounded());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingMicros(), 0u);
}

TEST(Deadline, ZeroBudgetExpiresImmediately)
{
    const Deadline d = Deadline::after(0);
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.remainingMicros(), 0u);
}

TEST(Deadline, GenerousBudgetIsAlive)
{
    const Deadline d = Deadline::after(60'000'000);
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingMicros(), 0u);
}

TEST(Deadline, CancelFlagForceExpires)
{
    std::atomic<bool> cancel{false};
    const Deadline d = Deadline::after(60'000'000, &cancel);
    EXPECT_FALSE(d.expired());
    cancel.store(true);
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.remainingMicros(), 0u);
}

// --------------------------------------------------------------------
// CircuitBreaker (fake clock throughout)
// --------------------------------------------------------------------

BreakerConfig
breakerConfig()
{
    BreakerConfig config;
    config.openAfterFailures = 3;
    config.cooldownMicros = 1000;
    return config;
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailures)
{
    CircuitBreaker breaker(breakerConfig());
    std::uint64_t now = 0;
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    breaker.recordFailure(now);
    breaker.recordFailure(now);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    breaker.recordFailure(now);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.openedCount(), 1u);
    EXPECT_FALSE(breaker.allow(now + 1));
    EXPECT_EQ(breaker.rejectedCount(), 1u);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak)
{
    CircuitBreaker breaker(breakerConfig());
    breaker.recordFailure(0);
    breaker.recordFailure(0);
    breaker.recordSuccess(0);
    breaker.recordFailure(0);
    breaker.recordFailure(0);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccess)
{
    CircuitBreaker breaker(breakerConfig());
    for (unsigned i = 0; i < 3; ++i)
        breaker.recordFailure(100);
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_FALSE(breaker.allow(100 + 999));

    // Cooldown over: exactly one probe goes through.
    EXPECT_TRUE(breaker.allow(100 + 1000));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    EXPECT_EQ(breaker.halfOpenedCount(), 1u);
    EXPECT_FALSE(breaker.allow(100 + 1001));

    breaker.recordSuccess(100 + 1002);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_EQ(breaker.reclosedCount(), 1u);
    EXPECT_TRUE(breaker.allow(100 + 1003));
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopensAndRestartsCooldown)
{
    CircuitBreaker breaker(breakerConfig());
    for (unsigned i = 0; i < 3; ++i)
        breaker.recordFailure(0);
    ASSERT_TRUE(breaker.allow(1000)); // the probe
    breaker.recordFailure(1500);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.openedCount(), 2u);
    // The cooldown restarted at the probe failure, not the first open.
    EXPECT_FALSE(breaker.allow(2000));
    EXPECT_TRUE(breaker.allow(2500));
}

TEST(CircuitBreaker, HalfOpenSingleProbeExclusivityUnderConcurrency)
{
    CircuitBreaker breaker(breakerConfig());
    for (unsigned i = 0; i < 3; ++i)
        breaker.recordFailure(0);
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    // Many threads race allow() right as the cooldown expires;
    // exactly one may win the probe slot.
    constexpr unsigned kThreads = 16;
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::atomic<unsigned> admitted{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            ready.fetch_add(1);
            while (!go.load())
                std::this_thread::yield();
            if (breaker.allow(5000))
                admitted.fetch_add(1);
        });
    while (ready.load() != kThreads)
        std::this_thread::yield();
    go.store(true);
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(admitted.load(), 1u);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    EXPECT_EQ(breaker.halfOpenedCount(), 1u);
    EXPECT_EQ(breaker.rejectedCount(), kThreads - 1);
}

TEST(CircuitBreaker, ConfigValidateNamesTheField)
{
    BreakerConfig config;
    config.openAfterFailures = 0;
    EXPECT_NE(config.validate().toString().find("openAfterFailures"),
              std::string::npos);
    config = BreakerConfig{};
    config.cooldownMicros = 0;
    EXPECT_NE(config.validate().toString().find("cooldownMicros"),
              std::string::npos);
}

// --------------------------------------------------------------------
// RetryBudget
// --------------------------------------------------------------------

TEST(RetryBudget, DrainsAndDenies)
{
    RetryBudgetConfig config;
    config.capacity = 2.0;
    config.refillPerSuccess = 0.0;
    RetryBudget budget(config);
    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_FALSE(budget.tryWithdraw());
    EXPECT_EQ(budget.deniedCount(), 1u);
}

TEST(RetryBudget, SuccessesRefillUpToCapacity)
{
    RetryBudgetConfig config;
    config.capacity = 2.0;
    config.refillPerSuccess = 0.5;
    RetryBudget budget(config);
    ASSERT_TRUE(budget.tryWithdraw());
    ASSERT_TRUE(budget.tryWithdraw());
    ASSERT_FALSE(budget.tryWithdraw());
    budget.onSuccess();
    ASSERT_FALSE(budget.tryWithdraw()); // 0.5 < 1 token
    budget.onSuccess();
    EXPECT_TRUE(budget.tryWithdraw());
    for (int i = 0; i < 100; ++i)
        budget.onSuccess();
    EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
}

// --------------------------------------------------------------------
// AdvisorEngine
// --------------------------------------------------------------------

AdvisorConfig
engineConfig()
{
    AdvisorConfig config;
    config.rolloutNodes = 8;
    config.rolloutJobs = 12;
    config.rolloutHorizonSeconds = 1800.0;
    config.seed = 42;
    return config;
}

AdvisorRequest
mixRequest(std::uint64_t id, unsigned usage_class,
           double runtime_seconds = 600.0)
{
    AdvisorRequest request;
    request.id = id;
    request.mix = {{2, usage_class, runtime_seconds, 1.0}};
    return request;
}

TEST(AdvisorEngine, TableOnlyAnswersFollowTheEligibleFraction)
{
    AdvisorEngine engine(engineConfig());
    AdvisorRequest low = mixRequest(1, 0);
    low.allowRollout = false;
    const AdvisorDecision fast = engine.decide(low, Deadline{});
    EXPECT_EQ(fast.quality, Quality::kDegraded);
    EXPECT_EQ(fast.marginGroup, 0);
    EXPECT_TRUE(fast.heteroDmr);
    EXPECT_GT(fast.expectedSpeedup, 1.0);
    EXPECT_EQ(fast.id, 1u);

    AdvisorRequest high = mixRequest(2, 2);
    high.allowRollout = false;
    const AdvisorDecision spec = engine.decide(high, Deadline{});
    EXPECT_EQ(spec.marginGroup, 2);
    EXPECT_FALSE(spec.heteroDmr);
    EXPECT_DOUBLE_EQ(spec.expectedSpeedup, 1.0);
}

TEST(AdvisorEngine, RolloutProducesExactThenCacheServesIt)
{
    AdvisorEngine engine(engineConfig());
    const AdvisorRequest request = mixRequest(10, 0);
    const AdvisorDecision exact =
        engine.decide(request, Deadline::after(10'000'000));
    EXPECT_EQ(exact.quality, Quality::kExact);
    EXPECT_GT(exact.rolloutTurnaroundSeconds, 0.0);
    EXPECT_EQ(engine.cacheSize(), 1u);

    AdvisorRequest again = mixRequest(11, 0);
    const AdvisorDecision cached =
        engine.decide(again, Deadline::after(10'000'000));
    EXPECT_EQ(cached.quality, Quality::kCached);
    EXPECT_EQ(cached.id, 11u); // id rewritten on the way out
    EXPECT_EQ(cached.marginGroup, exact.marginGroup);
    EXPECT_DOUBLE_EQ(cached.expectedSpeedup, exact.expectedSpeedup);

    const AdvisorStats stats = engine.stats();
    EXPECT_EQ(stats.decisionsExact, 1u);
    EXPECT_EQ(stats.decisionsCached, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.rolloutsCompleted, 1u);
}

TEST(AdvisorEngine, ExpiredDeadlineSkipsTheRollout)
{
    AdvisorEngine engine(engineConfig());
    const AdvisorDecision d =
        engine.decide(mixRequest(20, 0), Deadline::after(0));
    EXPECT_EQ(d.quality, Quality::kDegraded);
    EXPECT_EQ(engine.stats().rolloutsAttempted, 0u);
}

TEST(AdvisorEngine, SlowRolloutsDegradeAndOpenTheBreaker)
{
    AdvisorConfig config = engineConfig();
    config.breaker.openAfterFailures = 2;
    config.breaker.cooldownMicros = 50'000'000; // stays open
    AdvisorEngine engine(config);

    fault::SlowPathInjector injector;
    injector.armDelay(2000); // 2 ms per decision point
    engine.setSlowPathInjector(&injector);

    for (std::uint64_t id = 0; id < 2; ++id) {
        // Distinct runtimes bust the cache so each decide() must try
        // a rollout; 1 ms deadline < one 2 ms simulated event.
        const AdvisorDecision d = engine.decide(
            mixRequest(30 + id, 0, 600.0 + 61.0 * double(id)),
            Deadline::after(1000));
        EXPECT_EQ(d.quality, Quality::kDegraded);
    }
    EXPECT_EQ(engine.stats().rolloutsDeadlineHit, 2u);
    EXPECT_EQ(engine.breaker().state(), CircuitBreaker::State::kOpen);

    // Breaker open: the rollout path is rejected outright.
    const AdvisorDecision d = engine.decide(
        mixRequest(40, 0, 1300.0), Deadline::after(10'000'000));
    EXPECT_EQ(d.quality, Quality::kDegraded);
    EXPECT_EQ(engine.stats().rolloutsBreakerRejected, 1u);
    EXPECT_GT(injector.perturbs(), 0u);
}

TEST(AdvisorEngine, CacheEvictsFifoAtCapacity)
{
    AdvisorConfig config = engineConfig();
    config.cacheCapacity = 1;
    AdvisorEngine engine(config);
    engine.decide(mixRequest(1, 0, 600.0), Deadline::after(10'000'000));
    engine.decide(mixRequest(2, 0, 900.0), Deadline::after(10'000'000));
    EXPECT_EQ(engine.cacheSize(), 1u);
    EXPECT_EQ(engine.stats().cacheEvictions, 1u);
}

TEST(AdvisorEngine, WarmStartServesBitIdenticalCachedAnswers)
{
    AdvisorEngine a(engineConfig());
    const AdvisorRequest request = mixRequest(50, 0);
    ASSERT_EQ(a.decide(request, Deadline::after(10'000'000)).quality,
              Quality::kExact);
    const std::vector<std::uint8_t> state = a.saveState();

    AdvisorRequest replay = mixRequest(51, 0);
    const AdvisorDecision fromA =
        a.decide(replay, Deadline::after(10'000'000));
    ASSERT_EQ(fromA.quality, Quality::kCached);

    AdvisorEngine b(engineConfig());
    ASSERT_TRUE(b.restoreState(state).ok());
    EXPECT_EQ(b.cacheSize(), 1u);
    const AdvisorDecision fromB =
        b.decide(replay, Deadline::after(10'000'000));
    EXPECT_EQ(fromB.quality, Quality::kCached);
    EXPECT_TRUE(encodeDecision(fromB) == encodeDecision(fromA));
}

TEST(AdvisorEngine, RestoreRejectsForeignConfigAndCorruption)
{
    AdvisorEngine a(engineConfig());
    a.decide(mixRequest(60, 0), Deadline::after(10'000'000));
    const std::vector<std::uint8_t> state = a.saveState();

    AdvisorConfig other = engineConfig();
    other.seed = 43;
    AdvisorEngine b(other);
    EXPECT_EQ(b.restoreState(state).code(),
              util::StatusCode::kFailedPrecondition);
    EXPECT_EQ(b.cacheSize(), 0u); // untouched on error

    AdvisorEngine c(engineConfig());
    for (std::size_t cut = 0; cut < state.size(); ++cut) {
        const std::vector<std::uint8_t> truncated(
            state.begin(), state.begin() + cut);
        EXPECT_FALSE(c.restoreState(truncated).ok());
        EXPECT_EQ(c.cacheSize(), 0u);
    }
}

// --------------------------------------------------------------------
// AdvisorService
// --------------------------------------------------------------------

ServiceConfig
serviceConfig()
{
    ServiceConfig config;
    config.workers = 1;
    config.queueCapacity = 4;
    config.defaultDeadlineMicros = 200'000;
    config.maxDeadlineMicros = 1'000'000;
    return config;
}

/** Collects responses (id from decision, or 0 for refusals). */
struct Collector
{
    std::mutex mu;
    std::vector<ServedResponse> responses;

    ResponseCallback
    callback()
    {
        return [this](const ServedResponse &r) {
            std::lock_guard<std::mutex> lock(mu);
            responses.push_back(r);
        };
    }

    std::size_t
    count()
    {
        std::lock_guard<std::mutex> lock(mu);
        return responses.size();
    }

    ServedResponse
    at(std::size_t i)
    {
        std::lock_guard<std::mutex> lock(mu);
        return responses.at(i);
    }
};

void
awaitCount(Collector &collector, std::size_t n)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (collector.count() < n &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GE(collector.count(), n);
}

void
awaitInFlight(AdvisorService &service, unsigned n)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (service.inFlight() < n &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GE(service.inFlight(), n);
}

TEST(AdvisorService, ServesATableRequestEndToEnd)
{
    AdvisorService service(serviceConfig(), engineConfig());
    Collector collector;
    AdvisorRequest request = mixRequest(1, 0);
    request.allowRollout = false;
    service.submit(request, collector.callback());
    awaitCount(collector, 1);
    const ServedResponse response = collector.at(0);
    EXPECT_TRUE(response.status.ok());
    EXPECT_FALSE(response.shed);
    EXPECT_EQ(response.decision.id, 1u);
    EXPECT_EQ(response.decision.quality, Quality::kDegraded);
    const ServiceCounters counters = service.counters();
    EXPECT_EQ(counters.admitted, 1u);
    EXPECT_EQ(counters.served, 1u);
    EXPECT_EQ(counters.totalShed(), 0u);
}

TEST(AdvisorService, MalformedRequestsAreRejectedNotAdmitted)
{
    AdvisorService service(serviceConfig(), engineConfig());
    Collector collector;
    AdvisorRequest bad; // empty mix
    service.submit(bad, collector.callback());
    awaitCount(collector, 1);
    EXPECT_EQ(collector.at(0).status.code(),
              util::StatusCode::kInvalidArgument);
    EXPECT_FALSE(collector.at(0).shed);
    EXPECT_EQ(service.counters().rejectedInvalid, 1u);
    EXPECT_EQ(service.counters().admitted, 0u);
}

TEST(AdvisorService, SubmitFrameReportsParseErrorsSynchronously)
{
    AdvisorService service(serviceConfig(), engineConfig());
    Collector collector;
    const std::vector<std::uint8_t> garbage = {1, 2, 3};
    EXPECT_FALSE(
        service.submitFrame(garbage.data(), garbage.size(),
                            collector.callback())
            .ok());
    EXPECT_EQ(collector.count(), 0u);

    AdvisorRequest request = mixRequest(5, 0);
    request.allowRollout = false;
    const std::vector<std::uint8_t> bytes = encodeRequest(request);
    ASSERT_TRUE(service
                    .submitFrame(bytes.data(), bytes.size(),
                                 collector.callback())
                    .ok());
    awaitCount(collector, 1);
    EXPECT_TRUE(collector.at(0).status.ok());
}

TEST(AdvisorService, QueueFullShedsOldestAndServesNewestFirst)
{
    fault::SlowPathInjector injector;
    injector.armGate();
    AdvisorService service(serviceConfig(), engineConfig());
    service.engine().setSlowPathInjector(&injector);

    // Block the single worker inside a rollout behind the gate.
    Collector blockerResponses;
    AdvisorRequest blocker = mixRequest(100, 0);
    blocker.allowCached = false;
    blocker.deadlineMicros = 1'000'000;
    service.submit(blocker, blockerResponses.callback());
    awaitInFlight(service, 1);

    // Fill the queue (capacity 4) with ids 1..4, then overflow with
    // 5 and 6: the OLDEST queued requests (1, then 2) must be shed.
    Collector served;
    for (std::uint64_t id = 1; id <= 6; ++id) {
        AdvisorRequest request = mixRequest(id, 0);
        request.allowRollout = false;
        request.deadlineMicros = 1'000'000;
        service.submit(request, served.callback());
    }

    // Two responses (for ids 1 and 2) must already be shed refusals.
    awaitCount(served, 2);
    EXPECT_EQ(service.counters().shedQueueFull, 2u);
    EXPECT_EQ(service.queueDepth(), 4u);

    // Release the worker; the remaining four queued requests are
    // served newest-first: 6, 5, 4, 3.
    injector.release();
    injector.disarm();
    awaitCount(served, 6);
    awaitCount(blockerResponses, 1);

    std::vector<std::uint64_t> shedIds;
    std::vector<std::uint64_t> servedIds;
    for (std::size_t i = 0; i < served.count(); ++i) {
        const ServedResponse r = served.at(i);
        if (r.shed)
            shedIds.push_back(0); // shed refusals carry no decision
        else
            servedIds.push_back(r.decision.id);
    }
    ASSERT_EQ(shedIds.size(), 2u);
    ASSERT_EQ(servedIds.size(), 4u);
    EXPECT_EQ(servedIds,
              (std::vector<std::uint64_t>{6, 5, 4, 3}));
}

TEST(AdvisorService, QueueExpiryAnswersDeadlineExceeded)
{
    fault::SlowPathInjector injector;
    injector.armGate();
    ServiceConfig config = serviceConfig();
    config.defaultDeadlineMicros = 20'000;
    AdvisorService service(config, engineConfig());
    service.engine().setSlowPathInjector(&injector);

    Collector blockerResponses;
    AdvisorRequest blocker = mixRequest(100, 0);
    blocker.allowCached = false;
    blocker.deadlineMicros = 1'000'000;
    service.submit(blocker, blockerResponses.callback());
    awaitInFlight(service, 1);

    // Queue a request with the 20 ms default deadline, hold the gate
    // well past it, then release: it must be answered
    // kDeadlineExceeded without touching the engine.
    Collector collector;
    AdvisorRequest request = mixRequest(1, 0);
    request.allowRollout = false;
    service.submit(request, collector.callback());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    injector.release();
    injector.disarm();

    awaitCount(collector, 1);
    const ServedResponse response = collector.at(0);
    EXPECT_EQ(response.status.code(),
              util::StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(response.shed);
    EXPECT_TRUE(response.status.isRetriable() == false);
    EXPECT_EQ(service.counters().shedQueueExpired, 1u);
}

TEST(AdvisorService, DrainingRefusesNewRequests)
{
    AdvisorService service(serviceConfig(), engineConfig());
    service.beginDrain();
    EXPECT_TRUE(service.draining());
    Collector collector;
    AdvisorRequest request = mixRequest(1, 0);
    request.allowRollout = false;
    service.submit(request, collector.callback());
    awaitCount(collector, 1);
    EXPECT_EQ(collector.at(0).status.code(),
              util::StatusCode::kUnavailable);
    EXPECT_TRUE(collector.at(0).shed);
    EXPECT_TRUE(collector.at(0).status.isRetriable());
    EXPECT_EQ(service.counters().shedDraining, 1u);
    EXPECT_TRUE(service.awaitDrain(1'000'000).ok());
}

TEST(AdvisorService, RetryBudgetRefusesRetriesWhenEmpty)
{
    ServiceConfig config = serviceConfig();
    config.retry.capacity = 2.0;
    config.retry.refillPerSuccess = 0.0;
    AdvisorService service(config, engineConfig());
    Collector collector;
    for (std::uint64_t id = 1; id <= 3; ++id) {
        AdvisorRequest request = mixRequest(id, 0);
        request.allowRollout = false;
        request.isRetry = true;
        service.submit(request, collector.callback());
    }
    awaitCount(collector, 3);
    unsigned denied = 0;
    for (std::size_t i = 0; i < 3; ++i)
        if (collector.at(i).status.code() ==
            util::StatusCode::kUnavailable)
            ++denied;
    EXPECT_EQ(denied, 1u);
    EXPECT_EQ(service.counters().shedRetryDenied, 1u);
}

TEST(AdvisorService, DrainDeadlineExpiryWithStuckInFlightRequest)
{
    fault::SlowPathInjector injector;
    injector.armGate();
    AdvisorService service(serviceConfig(), engineConfig());
    service.engine().setSlowPathInjector(&injector);

    Collector blockerResponses;
    AdvisorRequest blocker = mixRequest(100, 0);
    blocker.allowCached = false;
    blocker.deadlineMicros = 1'000'000;
    service.submit(blocker, blockerResponses.callback());
    awaitInFlight(service, 1);

    // One more request sits in the queue behind the stuck worker.
    Collector queued;
    AdvisorRequest waiting = mixRequest(1, 0);
    waiting.allowRollout = false;
    service.submit(waiting, queued.callback());

    service.beginDrain();
    const util::Status drained = service.awaitDrain(50'000);
    EXPECT_EQ(drained.code(), util::StatusCode::kDeadlineExceeded);

    // The queued request was shed by the forced drain.
    awaitCount(queued, 1);
    EXPECT_EQ(queued.at(0).status.code(),
              util::StatusCode::kUnavailable);

    // Unstick the worker; the force-cancelled rollout degrades and
    // the blocker still gets an answer.
    injector.release();
    injector.disarm();
    awaitCount(blockerResponses, 1);
    EXPECT_TRUE(blockerResponses.at(0).status.ok());
    EXPECT_EQ(blockerResponses.at(0).decision.quality,
              Quality::kDegraded);
}

TEST(AdvisorService, DrainAndSnapshotWarmStartsBitIdentically)
{
    snapshot::Keeper keeper("test_serve_warmstart.snap", 2);
    struct KeeperCleanup
    {
        const snapshot::Keeper &keeper;
        ~KeeperCleanup()
        {
            for (unsigned g = 0; g < keeper.keep(); ++g)
                std::remove(keeper.generationPath(g).c_str());
        }
    } cleanup{keeper};

    AdvisorRequest warm = mixRequest(7, 0);
    warm.deadlineMicros = 1'000'000;
    std::vector<std::uint8_t> firstCachedBytes;
    {
        AdvisorService service(serviceConfig(), engineConfig());
        Collector collector;
        service.submit(warm, collector.callback());
        awaitCount(collector, 1);
        ASSERT_EQ(collector.at(0).decision.quality, Quality::kExact);

        // Ask again so we know the *cached* form of the answer.
        AdvisorRequest replay = warm;
        replay.id = 8;
        service.submit(replay, collector.callback());
        awaitCount(collector, 2);
        ASSERT_EQ(collector.at(1).decision.quality, Quality::kCached);
        firstCachedBytes = encodeDecision(collector.at(1).decision);

        ASSERT_TRUE(
            service.drainAndSnapshot(keeper, 2'000'000).ok());
    }

    // A fresh service restores the snapshot and serves the same
    // cached decision, bit for bit.
    AdvisorService restarted(serviceConfig(), engineConfig());
    const util::Result<snapshot::Keeper::Loaded> loaded =
        keeper.loadLatestValid(snapshot::kAdvisorStateKind);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    ASSERT_TRUE(
        restarted.engine().restoreState(loaded.value().payload).ok());

    Collector collector;
    AdvisorRequest replay = warm;
    replay.id = 8;
    restarted.submit(replay, collector.callback());
    awaitCount(collector, 1);
    EXPECT_EQ(collector.at(0).decision.quality, Quality::kCached);
    EXPECT_TRUE(encodeDecision(collector.at(0).decision) ==
                firstCachedBytes);
}

TEST(AdvisorService, PublishMetricsExportsTheLadder)
{
    AdvisorService service(serviceConfig(), engineConfig());
    Collector collector;
    AdvisorRequest request = mixRequest(1, 0);
    request.allowRollout = false;
    service.submit(request, collector.callback());
    awaitCount(collector, 1);

    telemetry::Registry registry;
    service.publishMetrics(registry, "advisor");
    ASSERT_NE(registry.find("advisor.served"), nullptr);
    EXPECT_EQ(std::get<telemetry::Counter>(
                  *registry.find("advisor.served"))
                  .value(),
              1u);
    ASSERT_NE(registry.find("advisor.decisions_degraded"), nullptr);
    ASSERT_NE(registry.find("advisor.breaker_state"), nullptr);
    ASSERT_NE(registry.find("advisor.served_latency_micros"), nullptr);
    const auto &h = std::get<telemetry::Log2Histogram>(
        *registry.find("advisor.served_latency_micros"));
    EXPECT_EQ(h.count(), 1u);
}

} // namespace
