/**
 * @file
 * Tests for src/telemetry: log2-histogram bucket boundaries, registry
 * find-or-create and kind-collision/malformed-name fatals, label
 * sanitizing, metric snapshot round-trips (save -> restore -> digest
 * equality), span misnesting panics, Chrome-trace JSON well-formedness
 * (checked by a mini JSON parser), the HDMR_TM_* null-guard macros,
 * and cluster-simulator telemetry surviving a mid-run snapshot ->
 * resume bit-identically.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sched/cluster_sim.hh"
#include "snapshot/digest.hh"
#include "snapshot/serializer.hh"
#include "telemetry/bench_record.hh"
#include "telemetry/sinks.hh"
#include "telemetry/telemetry.hh"
#include "traces/job_trace.hh"
#include "util/status.hh"

namespace
{

using namespace hdmr;
using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Log2Histogram;
using telemetry::Registry;
using telemetry::TraceRecorder;

// --------------------------------------------------------------------
// Log2Histogram bucket boundaries
// --------------------------------------------------------------------

TEST(Log2Histogram, BucketOfBoundaryValues)
{
    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(UINT64_MAX), 64u);

    // Every power of two starts a new bucket; its neighbours stay put.
    for (unsigned n = 1; n < 64; ++n) {
        const std::uint64_t pow2 = std::uint64_t{1} << n;
        EXPECT_EQ(Log2Histogram::bucketOf(pow2), n + 1) << "2^" << n;
        EXPECT_EQ(Log2Histogram::bucketOf(pow2 - 1), n) << "2^" << n
                                                        << " - 1";
        EXPECT_EQ(Log2Histogram::bucketOf(pow2 + 1), n + 1)
            << "2^" << n << " + 1";
    }
}

TEST(Log2Histogram, BucketRangesTileTheU64Line)
{
    EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketHigh(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketHigh(64), UINT64_MAX);
    for (unsigned b = 0; b + 1 < Log2Histogram::kBuckets; ++b) {
        EXPECT_LE(Log2Histogram::bucketLow(b),
                  Log2Histogram::bucketHigh(b));
        EXPECT_EQ(Log2Histogram::bucketHigh(b) + 1,
                  Log2Histogram::bucketLow(b + 1));
    }
    for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b) {
        EXPECT_EQ(Log2Histogram::bucketOf(Log2Histogram::bucketLow(b)),
                  b);
        EXPECT_EQ(Log2Histogram::bucketOf(Log2Histogram::bucketHigh(b)),
                  b);
    }
}

TEST(Log2Histogram, RecordTotalsAndMean)
{
    Log2Histogram h;
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.record(0);
    h.record(1);
    h.record(7);
    h.record(8);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 16u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(Log2Histogram, SumWrapsModulo2To64)
{
    Log2Histogram h;
    h.record(UINT64_MAX);
    h.record(UINT64_MAX);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.sum(), UINT64_MAX - 1);
    EXPECT_EQ(h.bucketCount(64), 2u);
}

TEST(Log2Histogram, MergeMatchesFeedingOneHistogramBothStreams)
{
    Log2Histogram a, b, combined;
    for (std::uint64_t v : {0ull, 1ull, 5ull, 200ull, 200ull}) {
        a.record(v);
        combined.record(v);
    }
    for (std::uint64_t v : {3ull, 9000ull, ~0ull}) {
        b.record(v);
        combined.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.sum(), combined.sum());
    EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
    for (unsigned bucket = 0; bucket < Log2Histogram::kBuckets;
         ++bucket)
        EXPECT_EQ(a.bucketCount(bucket), combined.bucketCount(bucket))
            << bucket;
}

TEST(Log2Histogram, MergeWithEmptyIsIdentityBothWays)
{
    Log2Histogram h, empty;
    h.record(42);
    h.record(7);
    Log2Histogram copy = h;
    h.merge(empty);
    EXPECT_EQ(h.count(), copy.count());
    EXPECT_EQ(h.sum(), copy.sum());
    empty.merge(copy);
    EXPECT_EQ(empty.count(), copy.count());
    EXPECT_EQ(empty.sum(), copy.sum());
    EXPECT_EQ(empty.bucketCount(Log2Histogram::bucketOf(42)),
              copy.bucketCount(Log2Histogram::bucketOf(42)));
}

TEST(Log2Histogram, QuantilesAfterMergeEqualSingleStreamQuantiles)
{
    // Two skewed shards: merged quantiles must equal the quantiles of
    // one histogram that saw both streams (exactly - no re-binning).
    Log2Histogram fast, slow, combined;
    for (std::uint64_t i = 0; i < 90; ++i) {
        fast.record(100 + i);
        combined.record(100 + i);
    }
    for (std::uint64_t i = 0; i < 10; ++i) {
        slow.record(1 << 20);
        combined.record(1 << 20);
    }
    fast.merge(slow);
    for (const double q : {0.0, 0.5, 0.89, 0.95, 0.99, 1.0})
        EXPECT_EQ(fast.valueAtQuantile(q),
                  combined.valueAtQuantile(q))
            << q;
    // The slow tail lands above the fast mass: p99 sees the slow
    // bucket, p50 the fast one.
    EXPECT_GE(fast.valueAtQuantile(0.99),
              static_cast<std::uint64_t>(1) << 20);
    EXPECT_LT(fast.valueAtQuantile(0.5), 1024u);
}

// --------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------

TEST(Registry, FindOrCreateReturnsStableInstance)
{
    Registry registry;
    Counter &a = registry.counter("dram.ch0.row_hits");
    Counter &b = registry.counter("dram.ch0.row_hits");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, ValidNameRules)
{
    EXPECT_TRUE(Registry::validName("a"));
    EXPECT_TRUE(Registry::validName("dram.ch0.row_hits"));
    EXPECT_TRUE(Registry::validName("a-b_c.D9"));
    EXPECT_FALSE(Registry::validName(""));
    EXPECT_FALSE(Registry::validName(".leading"));
    EXPECT_FALSE(Registry::validName("trailing."));
    EXPECT_FALSE(Registry::validName("has space"));
    EXPECT_FALSE(Registry::validName("plus+plus"));
    EXPECT_FALSE(Registry::validName(std::string(300, 'x')));
}

TEST(RegistryDeathTest, KindCollisionIsFatal)
{
    Registry registry;
    registry.counter("node.jobs");
    EXPECT_EXIT(registry.gauge("node.jobs"),
                testing::ExitedWithCode(1), "already registered");
    EXPECT_EXIT(registry.histogram("node.jobs"),
                testing::ExitedWithCode(1), "already registered");
}

TEST(RegistryDeathTest, MalformedNameIsFatal)
{
    Registry registry;
    EXPECT_EXIT(registry.counter("has space"),
                testing::ExitedWithCode(1), "malformed metric name");
    EXPECT_EXIT(registry.counter(".dot"), testing::ExitedWithCode(1),
                "malformed metric name");
}

TEST(Registry, SanitizeMetricComponent)
{
    EXPECT_EQ(telemetry::sanitizeMetricComponent(
                  "Exploit Freq+Lat Margins"),
              "Exploit_Freq_Lat_Margins");
    EXPECT_EQ(telemetry::sanitizeMetricComponent("a.b"), "a_b");
    EXPECT_EQ(telemetry::sanitizeMetricComponent(""), "unnamed");
    EXPECT_EQ(telemetry::sanitizeMetricComponent("ok_as-is9"),
              "ok_as-is9");
}

// --------------------------------------------------------------------
// HDMR_TM_* null-guard macros
// --------------------------------------------------------------------

TEST(Macros, NullPointersAreIgnored)
{
    Counter *counter = nullptr;
    Gauge *gauge = nullptr;
    Log2Histogram *histogram = nullptr;
    HDMR_TM_INC(counter);
    HDMR_TM_ADD(counter, 5);
    HDMR_TM_SET(gauge, 1.0);
    HDMR_TM_GAUGE_ADD(gauge, 1.0);
    HDMR_TM_RECORD(histogram, 42);
    // Nothing to assert beyond "did not crash".
}

TEST(Macros, BoundPointersUpdate)
{
    Registry registry;
    Counter *counter = &registry.counter("c");
    Gauge *gauge = &registry.gauge("g");
    Log2Histogram *histogram = &registry.histogram("h");
    HDMR_TM_INC(counter);
    HDMR_TM_ADD(counter, 4);
    HDMR_TM_SET(gauge, 2.5);
    HDMR_TM_GAUGE_ADD(gauge, 0.5);
    HDMR_TM_RECORD(histogram, 9);
    EXPECT_EQ(counter->value(), 5u);
    EXPECT_DOUBLE_EQ(gauge->value(), 3.0);
    EXPECT_EQ(histogram->count(), 1u);
    EXPECT_EQ(histogram->sum(), 9u);
}

// --------------------------------------------------------------------
// Snapshot round-trip
// --------------------------------------------------------------------

Registry
populatedRegistry()
{
    Registry registry;
    Counter &c = registry.counter("sched.jobs_completed");
    c.inc(12345);
    Gauge &g = registry.gauge("sched.queue_depth");
    g.set(-3.75);
    Log2Histogram &h = registry.histogram("sched.turnaround_seconds");
    h.record(0);
    h.record(1);
    h.record(65535);
    h.record(UINT64_MAX);
    return registry;
}

TEST(RegistrySnapshot, RoundTripIntoFreshRegistry)
{
    const Registry original = populatedRegistry();
    snapshot::Serializer out;
    original.save(out);

    Registry restored;
    snapshot::Deserializer in(out.data());
    ASSERT_TRUE(restored.restore(in));
    EXPECT_TRUE(in.ok());
    EXPECT_EQ(in.remaining(), 0u);
    EXPECT_EQ(restored.digest(), original.digest());
    EXPECT_EQ(restored.size(), original.size());

    const auto *h = std::get_if<Log2Histogram>(
        restored.find("sched.turnaround_seconds"));
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 4u);
    EXPECT_EQ(h->bucketCount(0), 1u);
    EXPECT_EQ(h->bucketCount(64), 1u);
}

TEST(RegistrySnapshot, RestoreOverwritesBoundMetricsInPlace)
{
    const Registry original = populatedRegistry();
    snapshot::Serializer out;
    original.save(out);

    // A component binds its pointers *before* the restore (the resume
    // path): the same objects must carry the restored values.
    Registry restored;
    Counter &bound = restored.counter("sched.jobs_completed");
    bound.inc(7);
    snapshot::Deserializer in(out.data());
    ASSERT_TRUE(restored.restore(in));
    EXPECT_EQ(bound.value(), 12345u);
    EXPECT_EQ(restored.digest(), original.digest());
}

TEST(RegistrySnapshot, RestoreRejectsKindMismatch)
{
    const Registry original = populatedRegistry();
    snapshot::Serializer out;
    original.save(out);

    Registry restored;
    restored.gauge("sched.jobs_completed"); // counter in the image
    snapshot::Deserializer in(out.data());
    EXPECT_FALSE(restored.restore(in));
    EXPECT_FALSE(in.ok());
}

TEST(RegistrySnapshot, RestoreRejectsTruncatedImage)
{
    const Registry original = populatedRegistry();
    snapshot::Serializer out;
    original.save(out);
    std::vector<std::uint8_t> bytes = out.data();
    bytes.resize(bytes.size() / 2);

    Registry restored;
    snapshot::Deserializer in(bytes);
    EXPECT_FALSE(restored.restore(in));
}

// --------------------------------------------------------------------
// Trace recorder
// --------------------------------------------------------------------

TEST(TraceDeathTest, MisnestedSpansPanic)
{
    {
        TraceRecorder recorder;
        EXPECT_DEATH(recorder.endSpan(1.0), "no open");
    }
    {
        TraceRecorder recorder;
        recorder.beginSpan("outer", "test", 0.0);
        recorder.beginSpan("inner", "test", 1.0);
        EXPECT_DEATH(recorder.endSpan(2.0, 0, "outer"), "innermost");
    }
    {
        // Tracks nest independently: an open span on track 0 does not
        // license an end on track 1.
        TraceRecorder recorder;
        recorder.beginSpan("outer", "test", 0.0, 0);
        EXPECT_DEATH(recorder.endSpan(1.0, 1), "no open");
    }
}

TEST(Trace, EventCapCountsDrops)
{
    TraceRecorder recorder(2);
    recorder.instant("a", "test", 0.0);
    recorder.instant("b", "test", 1.0);
    recorder.instant("c", "test", 2.0);
    EXPECT_EQ(recorder.events().size(), 2u);
    EXPECT_EQ(recorder.dropped(), 1u);
}

/**
 * Minimal recursive-descent JSON well-formedness checker - enough to
 * prove the Chrome trace export is real JSON without a JSON library.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                const char esc = text_[pos_];
                if (esc == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(esc) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    std::string text_;
    std::size_t pos_ = 0;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(Trace, ChromeTraceExportIsWellFormedJson)
{
    TraceRecorder recorder;
    recorder.setThreadName(0, "leg \"zero\"");
    recorder.setThreadName(1, "leg\\one\n");
    recorder.beginSpan("outer", "sched", 0.0, 0);
    recorder.beginSpan("inner", "sched", 10.0, 0);
    recorder.instant("mode_switch", "core", 12.5, 1);
    recorder.endSpan(20.0, 0, "inner");
    recorder.endSpan(30.0, 0);
    recorder.beginSpan("left open", "sched", 31.0, 1);

    const std::string path = testing::TempDir() + "hdmr_trace.json";
    std::string error;
    ASSERT_TRUE(recorder.writeChromeTrace(path, &error)) << error;
    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty());
    EXPECT_TRUE(JsonChecker(text).valid());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Sinks, MetricExportsAreWellFormed)
{
    const Registry registry = populatedRegistry();
    const std::string json_path =
        testing::TempDir() + "hdmr_metrics.json";
    const std::string csv_path = testing::TempDir() + "hdmr_metrics.csv";
    std::string error;
    ASSERT_TRUE(telemetry::writeMetricsJson(registry, json_path, &error))
        << error;
    ASSERT_TRUE(telemetry::writeMetricsCsv(registry, csv_path, &error))
        << error;

    EXPECT_TRUE(JsonChecker(slurp(json_path)).valid());
    const std::string csv = slurp(csv_path);
    EXPECT_NE(csv.find("sched.jobs_completed,counter"),
              std::string::npos);
    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
}

// --------------------------------------------------------------------
// Cluster simulator: telemetry survives snapshot -> resume
// --------------------------------------------------------------------

std::vector<traces::Job>
smallTrace()
{
    traces::JobTraceModel model;
    model.numJobs = 800;
    model.systemNodes = 96;
    model.spanSeconds = 4 * 86400.0;
    return traces::GrizzlyTraceGenerator(model, 23).generate();
}

sched::ClusterConfig
smallConfig()
{
    sched::ClusterConfig config;
    config.nodes = 96;
    config.heteroDmr = true;
    config.marginAware = true;
    return config;
}

TEST(ClusterTelemetry, ResumeReproducesMetricStateBitIdentically)
{
    const auto jobs = smallTrace();
    const auto config = smallConfig();
    sched::RunOptions options;
    options.digestEverySeconds = 6 * 3600.0;

    Registry straightRegistry;
    sched::ClusterSimulator straight(config);
    straight.bindTelemetry(straightRegistry, "cluster.test");
    const sched::RunOutcome full = straight.run(jobs, options);
    ASSERT_TRUE(full.completed);

    std::vector<std::uint8_t> state;
    sched::RunOptions stopping = options;
    stopping.stopAfterSeconds = 2 * 86400.0;
    stopping.snapshotSink =
        [&](const std::vector<std::uint8_t> &bytes) { state = bytes; };
    Registry interruptedRegistry;
    sched::ClusterSimulator interrupted(config);
    interrupted.bindTelemetry(interruptedRegistry, "cluster.test");
    const sched::RunOutcome partial = interrupted.run(jobs, stopping);
    ASSERT_FALSE(partial.completed);
    ASSERT_FALSE(state.empty());

    Registry resumedRegistry;
    sched::ClusterSimulator resumed(config);
    resumed.bindTelemetry(resumedRegistry, "cluster.test");
    const util::Status restored = resumed.restoreState(state, jobs);
    ASSERT_TRUE(restored.ok()) << restored.message();
    const sched::RunOutcome rest = resumed.resume(options);
    ASSERT_TRUE(rest.completed);

    EXPECT_EQ(resumedRegistry.digest(), straightRegistry.digest());
    EXPECT_TRUE(sched::metricsIdentical(full.metrics, rest.metrics));
    const auto divergence = snapshot::DigestTrail::firstDivergence(
        full.digests, rest.digests);
    EXPECT_EQ(divergence, std::nullopt)
        << "replay diverged at digest epoch " << *divergence;

    const auto *completions = std::get_if<Counter>(
        resumedRegistry.find("cluster.test.jobs_completed"));
    ASSERT_NE(completions, nullptr);
    EXPECT_EQ(completions->value(), full.metrics.jobsCompleted);
    const auto *turnaround = std::get_if<Log2Histogram>(
        resumedRegistry.find("cluster.test.turnaround_seconds"));
    ASSERT_NE(turnaround, nullptr);
    EXPECT_EQ(turnaround->count(), full.metrics.jobsCompleted);
}

TEST(ClusterTelemetry, RestoreRejectsTelemetryPresenceMismatch)
{
    const auto jobs = smallTrace();
    const auto config = smallConfig();
    sched::RunOptions stopping;
    stopping.stopAfterSeconds = 86400.0;
    std::vector<std::uint8_t> state;
    stopping.snapshotSink =
        [&](const std::vector<std::uint8_t> &bytes) { state = bytes; };

    // Saved WITH telemetry -> restored without.
    {
        Registry registry;
        sched::ClusterSimulator sim(config);
        sim.bindTelemetry(registry, "cluster.test");
        sim.run(jobs, stopping);
        ASSERT_FALSE(state.empty());
        sched::ClusterSimulator bare(config);
        const util::Status status = bare.restoreState(state, jobs);
        EXPECT_EQ(status.code(),
                  util::StatusCode::kFailedPrecondition)
            << status.toString();
        EXPECT_NE(status.message().find("telemetry"),
                  std::string::npos)
            << status.message();
    }

    // Saved WITHOUT telemetry -> restored with.
    {
        state.clear();
        sched::ClusterSimulator sim(config);
        sim.run(jobs, stopping);
        ASSERT_FALSE(state.empty());
        Registry registry;
        sched::ClusterSimulator bound(config);
        bound.bindTelemetry(registry, "cluster.test");
        const util::Status status = bound.restoreState(state, jobs);
        EXPECT_EQ(status.code(),
                  util::StatusCode::kFailedPrecondition)
            << status.toString();
        EXPECT_NE(status.message().find("telemetry"),
                  std::string::npos)
            << status.message();
    }
}

} // namespace
