/**
 * @file
 * Tests for the margin library: population calibration against the
 * paper's published statistics (Figs. 2-4), test-machine measurement
 * semantics (platform cap, quantization, overvolting), the error-rate
 * model's temperature/latency factors (Fig. 6), and the Monte-Carlo
 * channel/node margin distributions (Fig. 11).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "margin/drift.hh"
#include "margin/error_model.hh"
#include "margin/module.hh"
#include "margin/monte_carlo.hh"
#include "margin/population.hh"
#include "margin/study.hh"
#include "margin/test_machine.hh"
#include "snapshot/serializer.hh"
#include "util/status.hh"

namespace
{

using namespace hdmr::margin;

std::vector<MemoryModule>
studyFleet()
{
    return makeStudyFleet(2021);
}

TestMachine
roomTempMachine(std::uint64_t seed = 7)
{
    return TestMachine(TestMachineConfig{}, seed);
}

// --------------------------------------------------------------------
// Population composition
// --------------------------------------------------------------------

TEST(Population, StudyFleetComposition)
{
    const auto fleet = studyFleet();
    ASSERT_EQ(fleet.size(), 119u);

    auto count_if = [&](auto pred) {
        return std::count_if(fleet.begin(), fleet.end(), pred);
    };
    EXPECT_EQ(count_if([](const MemoryModule &m) {
                  return m.spec.brand == Brand::kA;
              }),
              40);
    EXPECT_EQ(count_if([](const MemoryModule &m) {
                  return m.spec.brand == Brand::kB;
              }),
              35);
    EXPECT_EQ(count_if([](const MemoryModule &m) {
                  return m.spec.brand == Brand::kC;
              }),
              28);
    EXPECT_EQ(count_if([](const MemoryModule &m) {
                  return m.spec.brand == Brand::kD;
              }),
              16);
    // 44 modules at 3200 MT/s with 9 chips/rank (Section II-A).
    EXPECT_EQ(count_if([](const MemoryModule &m) {
                  return m.spec.brand != Brand::kD &&
                         m.spec.specRateMts == 3200 &&
                         m.spec.chipsPerRank == 9;
              }),
              44);
    // Total chip count is in the thousands (Table I says 3006).
    unsigned chips = 0;
    for (const auto &m : fleet)
        chips += m.spec.chips();
    EXPECT_GT(chips, 2000u);
}

TEST(Population, DeterministicForSeed)
{
    const auto a = makeStudyFleet(5);
    const auto b = makeStudyFleet(5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].maxStableRateMts, b[i].maxStableRateMts);
        EXPECT_EQ(a[i].errorIntensity, b[i].errorIntensity);
    }
}

TEST(Population, BootableAboveStable)
{
    for (const auto &m : studyFleet())
        EXPECT_GT(m.maxBootableRateMts, m.maxStableRateMts);
}

TEST(Population, InProductionModulesAreA8toA31)
{
    for (const auto &m : studyFleet()) {
        if (m.spec.condition == Condition::kInProduction3Years) {
            EXPECT_EQ(m.spec.brand, Brand::kA);
            EXPECT_GE(m.id, 8u);
            EXPECT_LE(m.id, 31u);
        }
    }
}

// --------------------------------------------------------------------
// Measured statistics vs. the paper (Figs. 2-4)
// --------------------------------------------------------------------

struct MeasuredStudy
{
    std::vector<MemoryModule> fleet;
    std::vector<MarginMeasurement> measurements;
};

const MeasuredStudy &
measuredStudy()
{
    static const MeasuredStudy study = [] {
        MeasuredStudy s;
        s.fleet = studyFleet();
        TestMachine machine = roomTempMachine();
        s.measurements = machine.characterizeFleet(s.fleet);
        return s;
    }();
    return study;
}

TEST(Study, MajorBrandsAverageMarginNear770)
{
    const auto &s = measuredStudy();
    const GroupStats abc = aggregateMargins(
        s.fleet, s.measurements,
        [](const MemoryModule &m) { return m.spec.brand != Brand::kD; },
        "A-C");
    EXPECT_EQ(abc.count, 103u);
    EXPECT_NEAR(abc.meanMarginMts, 770.0, 80.0);
    // "27% when normalized to each module's specified data rate"
    EXPECT_NEAR(abc.meanMarginFraction, 0.27, 0.04);
}

TEST(Study, BrandDAverageMarginNear213)
{
    const auto &s = measuredStudy();
    const GroupStats d = aggregateMargins(
        s.fleet, s.measurements,
        [](const MemoryModule &m) { return m.spec.brand == Brand::kD; },
        "D");
    EXPECT_EQ(d.count, 16u);
    EXPECT_NEAR(d.meanMarginMts, 213.0, 110.0);
    // Major brands are ~2.6x higher.
    const GroupStats abc = aggregateMargins(
        s.fleet, s.measurements,
        [](const MemoryModule &m) { return m.spec.brand != Brand::kD; },
        "A-C");
    EXPECT_GT(abc.meanMarginMts / d.meanMarginMts, 1.8);
}

TEST(Study, MajorBrandsSimilarToEachOther)
{
    const auto &s = measuredStudy();
    const auto groups = groupMargins(
        s.fleet, s.measurements,
        [](const MemoryModule &m) { return toString(m.spec.brand); });
    double lo = 1e9, hi = 0;
    for (const auto &g : groups) {
        if (g.label == "D")
            continue;
        lo = std::min(lo, g.meanMarginMts);
        hi = std::max(hi, g.meanMarginMts);
    }
    EXPECT_LT(hi - lo, 220.0); // similar average margins (Fig. 3a)
}

TEST(Study, NineChipRankTighterThanEighteen)
{
    const auto &s = measuredStudy();
    const GroupStats nine = aggregateMargins(
        s.fleet, s.measurements,
        [](const MemoryModule &m) {
            return m.spec.brand != Brand::kD && m.spec.chipsPerRank == 9;
        },
        "9/rank");
    const GroupStats eighteen = aggregateMargins(
        s.fleet, s.measurements,
        [](const MemoryModule &m) {
            return m.spec.brand != Brand::kD && m.spec.chipsPerRank == 18;
        },
        "18/rank");
    EXPECT_GT(eighteen.stdevMts / nine.stdevMts, 1.4);
    // 9-chip/rank minimum margin is 600 MT/s (Section II-A).
    EXPECT_GE(nine.minMarginMts, 600.0);
}

TEST(Study, SpecRateEffectIncludingPlatformCap)
{
    const auto &s = measuredStudy();
    const GroupStats r2400 = aggregateMargins(
        s.fleet, s.measurements,
        [](const MemoryModule &m) {
            return m.spec.brand != Brand::kD && m.spec.specRateMts == 2400;
        },
        "2400");
    const GroupStats r3200 = aggregateMargins(
        s.fleet, s.measurements,
        [](const MemoryModule &m) {
            return m.spec.brand != Brand::kD && m.spec.specRateMts == 3200;
        },
        "3200");
    EXPECT_NEAR(r2400.meanMarginMts, 967.0, 120.0);
    EXPECT_NEAR(r3200.meanMarginMts, 679.0, 90.0);
    // No 3200 module can measure beyond the 4000 MT/s platform cap.
    for (std::size_t i = 0; i < s.fleet.size(); ++i) {
        EXPECT_LE(s.measurements[i].measuredMaxRateMts, 4000u);
    }
}

TEST(Study, MostNineChip3200ModulesReachTheCap)
{
    const auto &s = measuredStudy();
    unsigned at_cap = 0, total = 0;
    for (std::size_t i = 0; i < s.fleet.size(); ++i) {
        const auto &m = s.fleet[i];
        if (m.spec.brand == Brand::kD || m.spec.specRateMts != 3200 ||
            m.spec.chipsPerRank != 9) {
            continue;
        }
        ++total;
        at_cap += s.measurements[i].measuredMaxRateMts == 4000;
    }
    EXPECT_EQ(total, 44u);
    // Paper: 36 of 44.
    EXPECT_NEAR(static_cast<double>(at_cap), 36.0, 6.0);
}

TEST(Study, AgingHasLittleEffect)
{
    const auto &s = measuredStudy();
    const auto groups = groupMargins(
        s.fleet, s.measurements, [](const MemoryModule &m) {
            return std::string(toString(m.spec.condition));
        });
    // Compare only brand-A-dominated groups is messy; instead check the
    // in-production group against new modules of the same brand A.
    const GroupStats used = aggregateMargins(
        s.fleet, s.measurements,
        [](const MemoryModule &m) {
            return m.spec.condition == Condition::kInProduction3Years;
        },
        "used");
    const GroupStats fresh = aggregateMargins(
        s.fleet, s.measurements,
        [](const MemoryModule &m) {
            return m.spec.brand == Brand::kA &&
                   m.spec.condition == Condition::kNew;
        },
        "new-A");
    EXPECT_GT(groups.size(), 1u);
    EXPECT_LT(std::abs(used.meanMarginMts - fresh.meanMarginMts), 250.0);
}

TEST(Study, TableOneMatchesPaper)
{
    const auto &table = studyScaleTable();
    ASSERT_EQ(table.size(), 7u);
    EXPECT_STREQ(table[0].work, "This Paper");
    EXPECT_STREQ(table[0].modules, "119");
    EXPECT_STREQ(table[0].chips, "3006");
    EXPECT_STREQ(table[0].marginStudied, "frequency");
}

// --------------------------------------------------------------------
// Test machine semantics
// --------------------------------------------------------------------

TEST(TestMachine, MeasurementQuantizedToStep)
{
    const auto &s = measuredStudy();
    for (const auto &meas : s.measurements)
        EXPECT_EQ(meas.marginMts() % 200, 0u);
}

TEST(TestMachine, OvervoltHelpsOnlyBelowCap)
{
    const auto fleet = studyFleet();
    TestMachine machine = roomTempMachine(11);
    unsigned below_cap_improved = 0, below_cap_total = 0;
    for (const auto &m : fleet) {
        if (m.spec.brand == Brand::kD || m.spec.specRateMts != 3200)
            continue;
        const auto base = machine.characterize(m);
        const auto hot = machine.characterizeOvervolted(m);
        if (base.measuredMaxRateMts >= 4000) {
            // Already at the platform cap: 1.35 V cannot show more.
            EXPECT_LE(hot.measuredMaxRateMts, 4000u);
        } else {
            ++below_cap_total;
            below_cap_improved +=
                hot.measuredMaxRateMts > base.measuredMaxRateMts;
        }
    }
    ASSERT_GT(below_cap_total, 0u);
    // Paper: 22 of 27 below-cap modules gain margin at 1.35 V.
    EXPECT_GT(static_cast<double>(below_cap_improved) /
                  static_cast<double>(below_cap_total),
              0.55);
}

TEST(TestMachine, LatencyMarginsDoNotChangeFrequencyMargin)
{
    const auto fleet = studyFleet();
    TestMachineConfig with_lat;
    with_lat.exploitLatencyMargins = true;
    TestMachine base = roomTempMachine(13);
    TestMachine lat(with_lat, 13);
    int diffs = 0;
    for (const auto &m : fleet) {
        if (m.spec.brand == Brand::kD)
            continue;
        diffs += base.characterize(m).marginMts() !=
                 lat.characterize(m).marginMts();
    }
    // Paper: every module keeps the same frequency margin; allow a
    // couple of Poisson-noise flips in the simulated re-measurement.
    EXPECT_LE(diffs, 4);
}

TEST(TestMachine, HotChamberReducesMarginForFewModules)
{
    const auto fleet = studyFleet();
    TestMachineConfig hot_cfg;
    hot_cfg.ambientC = 45.0;
    TestMachine cool = roomTempMachine(17);
    TestMachine hot(hot_cfg, 17);
    int reduced = 0, tested = 0;
    for (const auto &m : fleet) {
        if (m.spec.brand == Brand::kD)
            continue;
        ++tested;
        reduced += hot.characterize(m).marginMts() <
                   cool.characterize(m).marginMts();
    }
    EXPECT_EQ(tested, 103);
    // Paper: 5 of 103 (some measurement noise allowed).
    EXPECT_LE(reduced, 14);
    EXPECT_GE(reduced, 1);
}

// --------------------------------------------------------------------
// Error-rate model (Fig. 6)
// --------------------------------------------------------------------

TEST(ErrorModel, SilentBelowStableRate)
{
    const auto fleet = studyFleet();
    const ErrorRateModel model;
    for (const auto &m : fleet) {
        OperatingPoint op;
        op.dataRateMts = m.maxStableRateMts;
        EXPECT_LT(model.errorsPerHour(m, op), 0.1);
    }
}

TEST(ErrorModel, GrowsWithOvershoot)
{
    const auto fleet = studyFleet();
    const ErrorRateModel model;
    const auto &m = fleet.front();
    OperatingPoint one, two;
    one.dataRateMts = m.maxStableRateMts + 200;
    two.dataRateMts = m.maxStableRateMts + 400;
    EXPECT_GT(model.errorsPerHour(m, two),
              10.0 * model.errorsPerHour(m, one));
}

TEST(ErrorModel, HotAmbientQuadruplesFrequencyErrorRate)
{
    const auto fleet = studyFleet();
    const ErrorRateModel model;
    // Use a module without hot-margin loss so the rate factor is pure.
    const auto it = std::find_if(fleet.begin(), fleet.end(),
                                 [](const MemoryModule &m) {
                                     return !m.marginDropsWhenHot &&
                                            !m.marginDropsWhenHotWithLatency;
                                 });
    ASSERT_NE(it, fleet.end());
    OperatingPoint cool, hot;
    cool.dataRateMts = hot.dataRateMts = it->maxBootableRateMts;
    hot.ambientC = 45.0;
    EXPECT_DOUBLE_EQ(model.errorsPerHour(*it, hot),
                     4.0 * model.errorsPerHour(*it, cool));
}

TEST(ErrorModel, HotAmbientDoublesFreqLatErrorRate)
{
    const auto fleet = studyFleet();
    const ErrorRateModel model;
    const auto it = std::find_if(fleet.begin(), fleet.end(),
                                 [](const MemoryModule &m) {
                                     return !m.marginDropsWhenHotWithLatency;
                                 });
    ASSERT_NE(it, fleet.end());
    OperatingPoint cool, hot;
    cool.dataRateMts = hot.dataRateMts = it->maxBootableRateMts;
    cool.latencyMarginsExploited = hot.latencyMarginsExploited = true;
    hot.ambientC = 45.0;
    EXPECT_DOUBLE_EQ(model.errorsPerHour(*it, hot),
                     2.0 * model.errorsPerHour(*it, cool));
}

TEST(ErrorModel, FullSystemSeesHalfPerModuleRate)
{
    const auto fleet = studyFleet();
    const ErrorRateModel model;
    const auto &m = fleet.front();
    OperatingPoint solo, shared;
    solo.dataRateMts = shared.dataRateMts = m.maxBootableRateMts;
    shared.accessIntensity = 0.5;
    EXPECT_DOUBLE_EQ(model.errorsPerHour(m, shared),
                     0.5 * model.errorsPerHour(m, solo));
}

TEST(ErrorModel, ErrorProbabilityPerReadIsTiny)
{
    const auto fleet = studyFleet();
    const ErrorRateModel model;
    for (const auto &m : fleet) {
        OperatingPoint op;
        op.dataRateMts = m.maxStableRateMts;
        const double p = model.errorProbabilityPerRead(m, op);
        EXPECT_GE(p, 0.0);
        EXPECT_LT(p, 1e-6);
    }
}

TEST(ErrorModel, StressTestCountsFollowModel)
{
    const auto fleet = studyFleet();
    TestMachine machine = roomTempMachine(19);
    const ErrorRateModel model;
    // At the margin edge errors should usually be non-zero and split
    // between CE and UE roughly 70/30.
    std::uint64_t ce = 0, ue = 0;
    for (const auto &m : fleet) {
        const auto result = machine.stressAtMarginEdge(m);
        if (!result)
            continue;
        ce += result->correctedErrors;
        ue += result->uncorrectedErrors;
    }
    ASSERT_GT(ce + ue, 100u);
    const double ue_frac =
        static_cast<double>(ue) / static_cast<double>(ce + ue);
    EXPECT_NEAR(ue_frac, 0.3, 0.1);
}

// --------------------------------------------------------------------
// Monte Carlo (Fig. 11)
// --------------------------------------------------------------------

TEST(MonteCarlo, ModuleMarginQuantizedAndCapped)
{
    MonteCarloConfig cfg;
    hdmr::util::Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const unsigned m = sampleModuleMargin(cfg, rng);
        EXPECT_EQ(m % cfg.quantStepMts, 0u);
        EXPECT_LE(m, cfg.marginCapMts);
    }
}

TEST(MonteCarlo, ChannelFractionsMatchFig11)
{
    MonteCarloConfig aware, unaware;
    unaware.marginAware = false;
    const auto aware_dist = channelMarginDistribution(aware, 42);
    const auto unaware_dist = channelMarginDistribution(unaware, 42);
    // Paper: 96% (aware) and 80% (unaware) of channels >= 0.8 GT/s.
    EXPECT_NEAR(aware_dist.fractionAtLeast(800), 0.96, 0.03);
    EXPECT_NEAR(unaware_dist.fractionAtLeast(800), 0.80, 0.04);
}

TEST(MonteCarlo, NodeFractionsMatchFig11)
{
    MonteCarloConfig aware, unaware;
    unaware.marginAware = false;
    const auto aware_dist = nodeMarginDistribution(aware, 43);
    const auto unaware_dist = nodeMarginDistribution(unaware, 43);
    // Paper: aware 62% >= 0.8 GT/s and 98% >= 0.6; unaware 7% and 96%.
    EXPECT_NEAR(aware_dist.fractionAtLeast(800), 0.62, 0.08);
    EXPECT_GT(aware_dist.fractionAtLeast(600), 0.93);
    EXPECT_NEAR(unaware_dist.fractionAtLeast(800), 0.07, 0.05);
    EXPECT_GT(unaware_dist.fractionAtLeast(600), 0.85);
}

TEST(MonteCarlo, AwareDominatesUnaware)
{
    MonteCarloConfig aware, unaware;
    unaware.marginAware = false;
    const auto a = nodeMarginDistribution(aware, 44);
    const auto u = nodeMarginDistribution(unaware, 44);
    for (unsigned margin : {200u, 400u, 600u, 800u})
        EXPECT_GE(a.fractionAtLeast(margin) + 1e-9,
                  u.fractionAtLeast(margin));
}

TEST(MonteCarlo, NodeGroupsSumToOne)
{
    MonteCarloConfig cfg;
    cfg.trials = 50000;
    const auto groups = nodeMarginGroups(cfg, 45);
    EXPECT_NEAR(groups.at800 + groups.at600 + groups.at0, 1.0, 1e-9);
    EXPECT_GT(groups.at800, 0.5);
    EXPECT_LT(groups.at0, 0.1);
}

} // namespace

// --------------------------------------------------------------------
// Margin profiler (Section III-E)
// --------------------------------------------------------------------

#include "margin/profiler.hh"

namespace
{

TEST(Profiler, BootProfileComputesNodeMargin)
{
    ModulePopulation population(3);
    ModuleSpec spec;
    spec.specRateMts = 3200;
    spec.chipsPerRank = 9;
    const auto modules = population.sampleFleet(spec, 8); // 4 channels
    MarginProfiler profiler(ProfilerConfig{}, 5);
    const auto profile = profiler.profile(modules, 0);
    ASSERT_EQ(profile.moduleMarginsMts.size(), 8u);
    ASSERT_EQ(profile.channelMarginsMts.size(), 4u);
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(profile.channelMarginsMts[c],
                  std::max(profile.moduleMarginsMts[2 * c],
                           profile.moduleMarginsMts[2 * c + 1]));
        EXPECT_LE(profile.nodeMarginMts, profile.channelMarginsMts[c]);
    }
}

TEST(Profiler, GuardBandDeratesMargin)
{
    ModulePopulation population(3);
    ModuleSpec spec;
    const auto modules = population.sampleFleet(spec, 2);
    ProfilerConfig banded;
    banded.guardBandSteps = 1;
    MarginProfiler plain(ProfilerConfig{}, 5);
    MarginProfiler derated(banded, 5);
    const auto a = plain.profile(modules, 0);
    const auto b = derated.profile(modules, 0);
    EXPECT_EQ(b.nodeMarginMts + 200, a.nodeMarginMts);
}

TEST(Profiler, ReprofilesOnlyWhenIdleAndStale)
{
    ModulePopulation population(3);
    ModuleSpec spec;
    const auto modules = population.sampleFleet(spec, 2);
    ProfilerConfig config;
    config.reprofileInterval = 1000;
    MarginProfiler profiler(config, 5);
    EXPECT_TRUE(profiler.maybeReprofile(modules, 0, true));
    EXPECT_FALSE(profiler.maybeReprofile(modules, 500, true));  // fresh
    EXPECT_FALSE(profiler.maybeReprofile(modules, 5000, false)); // busy
    EXPECT_TRUE(profiler.maybeReprofile(modules, 5000, true));
    EXPECT_EQ(profiler.profilesTaken(), 2u);
}

// --------------------------------------------------------------------
// Time-varying margin drift
// --------------------------------------------------------------------

DriftConfig
referenceDrift()
{
    DriftConfig config;
    config.seed = 0xd21f7u;
    config.modules = 16;
    config.horizonHours = 2000.0;
    config.agingMtsPerKiloHour = 150.0;
    config.agingSigma = 0.5;
    config.cohortSize = 4;
    config.cohortCorrelation = 0.5;
    config.diurnalAmplitudeC = 12.0;
    config.diurnalPeakHour = 14.0;
    config.spikesPerKiloHour = 5.0;
    config.spikeMeanHours = 0.25;
    config.spikeErrorMultiplier = 6.0;
    return config;
}

TEST(Drift, ValidateRejectsBadConfig)
{
    const auto expect_invalid = [](const hdmr::util::Status &status,
                                   const char *field) {
        EXPECT_EQ(status.code(),
                  hdmr::util::StatusCode::kInvalidArgument)
            << status.message();
        EXPECT_NE(status.message().find(field), std::string::npos)
            << status.message();
    };
    DriftConfig config = referenceDrift();
    config.modules = 0;
    expect_invalid(config.validate(), "modules");
    config = referenceDrift();
    config.agingMtsPerKiloHour = -1.0;
    expect_invalid(config.validate(), "agingMtsPerKiloHour");
    config = referenceDrift();
    config.agingExponent = 0.0;
    expect_invalid(config.validate(), "agingExponent");
    config = referenceDrift();
    config.cohortCorrelation = 1.5;
    expect_invalid(config.validate(), "cohortCorrelation");
    config = referenceDrift();
    config.diurnalPeakHour = 24.0;
    expect_invalid(config.validate(), "diurnalPeakHour");
    config = referenceDrift();
    config.spikeMeanHours = 0.0;
    expect_invalid(config.validate(), "spikeMeanHours");
    config = referenceDrift();
    config.spikeErrorMultiplier = 0.5;
    expect_invalid(config.validate(), "spikeErrorMultiplier");
    // Construction still dies on a bad config (checkOk boundary).
    config = referenceDrift();
    config.modules = 0;
    EXPECT_EXIT(MarginDriftModel model(config),
                ::testing::ExitedWithCode(1), "modules");
}

TEST(Drift, RealizationIsDeterministic)
{
    const MarginDriftModel a(referenceDrift());
    const MarginDriftModel b(referenceDrift());
    ASSERT_EQ(a.config().modules, b.config().modules);
    for (unsigned m = 0; m < a.config().modules; ++m) {
        EXPECT_DOUBLE_EQ(a.agingRateMtsPerKiloHour(m),
                         b.agingRateMtsPerKiloHour(m));
        EXPECT_EQ(a.spikes(m).size(), b.spikes(m).size());
    }
    EXPECT_EQ(a.digest(), b.digest());

    auto other = referenceDrift();
    other.seed ^= 1;
    const MarginDriftModel c(other);
    EXPECT_NE(a.digest(), c.digest());
}

TEST(Drift, FleetGrowthPreservesExistingCurves)
{
    // Per-module forked streams: enlarging the fleet must not perturb
    // the modules that were already in it.
    auto small = referenceDrift();
    small.modules = 8;
    auto large = referenceDrift();
    large.modules = 16;
    const MarginDriftModel a(small);
    const MarginDriftModel b(large);
    for (unsigned m = 0; m < small.modules; ++m) {
        EXPECT_DOUBLE_EQ(a.agingRateMtsPerKiloHour(m),
                         b.agingRateMtsPerKiloHour(m));
        ASSERT_EQ(a.spikes(m).size(), b.spikes(m).size());
        for (size_t i = 0; i < a.spikes(m).size(); ++i)
            EXPECT_DOUBLE_EQ(a.spikes(m)[i].startHour,
                             b.spikes(m)[i].startHour);
    }
}

TEST(Drift, CohortCorrelationPullsCohortMatesTogether)
{
    // With full correlation, every module in a cohort shares one aging
    // draw; with none, they are independent.
    auto correlated = referenceDrift();
    correlated.cohortCorrelation = 1.0;
    const MarginDriftModel model(correlated);
    for (unsigned c = 0; c < correlated.modules / correlated.cohortSize;
         ++c) {
        const double first =
            model.agingRateMtsPerKiloHour(c * correlated.cohortSize);
        for (unsigned k = 1; k < correlated.cohortSize; ++k)
            EXPECT_DOUBLE_EQ(model.agingRateMtsPerKiloHour(
                                 c * correlated.cohortSize + k),
                             first);
    }

    auto independent = referenceDrift();
    independent.cohortCorrelation = 0.0;
    const MarginDriftModel loose(independent);
    bool varies = false;
    for (unsigned k = 1; k < independent.cohortSize && !varies; ++k)
        varies = loose.agingRateMtsPerKiloHour(k) !=
                 loose.agingRateMtsPerKiloHour(0);
    EXPECT_TRUE(varies);
}

TEST(Drift, ErosionIsMonotoneAndDiurnalPeaksOnSchedule)
{
    const MarginDriftModel model(referenceDrift());
    double last = -1.0;
    for (double hour : {0.0, 100.0, 500.0, 1000.0, 2000.0}) {
        const double erosion = model.erosionMtsAt(0, hour);
        EXPECT_GT(erosion, last);
        last = erosion;
    }
    EXPECT_DOUBLE_EQ(model.erosionMtsAt(0, 0.0), 0.0);

    // Diurnal rise: full amplitude at the peak hour, zero twelve hours
    // opposite, same value every 24 h.
    const double peak = referenceDrift().diurnalPeakHour;
    EXPECT_DOUBLE_EQ(model.ambientDeltaAt(peak),
                     referenceDrift().diurnalAmplitudeC);
    EXPECT_NEAR(model.ambientDeltaAt(peak + 12.0), 0.0, 1e-12);
    EXPECT_NEAR(model.ambientDeltaAt(peak + 48.0),
                model.ambientDeltaAt(peak), 1e-9);
}

TEST(Drift, DriftedOracleDegradesStableRateOverTime)
{
    const auto fleet = studyFleet();
    const ErrorRateModel error_model;
    const MarginDriftModel model(referenceDrift());
    const auto &module = fleet.front();
    OperatingPoint op;
    op.dataRateMts = module.maxStableRateMts;

    const unsigned fresh =
        model.stableRateAt(error_model, module, op, 0, 0.0);
    const unsigned worn =
        model.stableRateAt(error_model, module, op, 0, 2000.0);
    EXPECT_EQ(fresh, error_model.stableRateAt(module, op));
    EXPECT_LT(worn, fresh);

    // Worn module + diurnal peak: errors/hour can only go up relative
    // to the fresh module at the base operating point.
    const double quiet =
        model.errorsPerHourAt(error_model, module, op, 0, 0.0);
    const double strained = model.errorsPerHourAt(
        error_model, module, op, 0, 2000.0 + referenceDrift().diurnalPeakHour);
    EXPECT_GE(strained, quiet);
}

TEST(Drift, SpikeMultiplierOnlyInsideWindows)
{
    const MarginDriftModel model(referenceDrift());
    for (unsigned m = 0; m < model.config().modules; ++m) {
        for (const VoltageSpike &spike : model.spikes(m)) {
            const double inside =
                spike.startHour + spike.durationHours / 2.0;
            EXPECT_GE(model.errorMultiplierAt(m, inside),
                      model.config().spikeErrorMultiplier);
        }
        EXPECT_DOUBLE_EQ(
            model.errorMultiplierAt(m, model.config().horizonHours + 1.0),
            1.0);
    }
}

TEST(Drift, SnapshotFingerprintRoundTripsAndRejectsOtherRealization)
{
    const MarginDriftModel model(referenceDrift());
    hdmr::snapshot::Serializer out;
    model.save(out);

    MarginDriftModel same(referenceDrift());
    hdmr::snapshot::Deserializer in(out.data());
    EXPECT_TRUE(same.restore(in));
    EXPECT_TRUE(in.ok());
    EXPECT_EQ(in.remaining(), 0u);

    auto tweaked = referenceDrift();
    tweaked.seed ^= 1;
    MarginDriftModel other(tweaked);
    hdmr::snapshot::Deserializer reject(out.data());
    EXPECT_FALSE(other.restore(reject));
    EXPECT_FALSE(reject.ok());
}

} // namespace
