/**
 * @file
 * Tests for the snapshot/resume layer: serializer byte layout and
 * bounds checking, snapshot-file rejection (truncated, corrupted,
 * wrong version/kind), RNG and epoch-guard state round-trips,
 * fault-schedule fingerprinting, digest-trail divergence detection,
 * mid-run save -> resume bit-identity for the cluster simulator, and
 * the construction-time config validation fatal()s.
 *
 * File-level rejection tests assert on util::Status codes: corruption
 * and truncation are kDataLoss, version/kind mismatches are
 * kFailedPrecondition, and a missing file is kNotFound - the contract
 * the Keeper fallback logic branches on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/epoch_guard.hh"
#include "fault/campaign.hh"
#include "sched/cluster_sim.hh"
#include "snapshot/digest.hh"
#include "snapshot/keeper.hh"
#include "snapshot/serializer.hh"
#include "traces/job_trace.hh"
#include "util/rng.hh"
#include "util/status.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::snapshot;

// --------------------------------------------------------------------
// Serializer / Deserializer
// --------------------------------------------------------------------

TEST(Serializer, ScalarRoundTrip)
{
    Serializer out;
    out.writeU8(0xab);
    out.writeU16(0xbeef);
    out.writeU32(0xdeadbeefu);
    out.writeU64(0x0123456789abcdefull);
    out.writeI64(-42);
    out.writeBool(true);
    out.writeBool(false);
    out.writeDouble(-1.5e-300);
    out.writeString("hello");
    out.writeBlob({1, 2, 3});

    Deserializer in(out.data());
    EXPECT_EQ(in.readU8(), 0xab);
    EXPECT_EQ(in.readU16(), 0xbeef);
    EXPECT_EQ(in.readU32(), 0xdeadbeefu);
    EXPECT_EQ(in.readU64(), 0x0123456789abcdefull);
    EXPECT_EQ(in.readI64(), -42);
    EXPECT_TRUE(in.readBool());
    EXPECT_FALSE(in.readBool());
    EXPECT_EQ(in.readDouble(), -1.5e-300);
    EXPECT_EQ(in.readString(), "hello");
    EXPECT_EQ(in.readBlob(), (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_TRUE(in.ok());
    EXPECT_EQ(in.remaining(), 0u);
}

TEST(Serializer, LittleEndianLayout)
{
    Serializer out;
    out.writeU32(0x01020304u);
    ASSERT_EQ(out.data().size(), 4u);
    EXPECT_EQ(out.data()[0], 0x04);
    EXPECT_EQ(out.data()[1], 0x03);
    EXPECT_EQ(out.data()[2], 0x02);
    EXPECT_EQ(out.data()[3], 0x01);

    Serializer dbl;
    dbl.writeDouble(1.0); // IEEE-754: 0x3ff0000000000000
    ASSERT_EQ(dbl.data().size(), 8u);
    EXPECT_EQ(dbl.data()[7], 0x3f);
    EXPECT_EQ(dbl.data()[6], 0xf0);
    EXPECT_EQ(dbl.data()[0], 0x00);
}

TEST(Serializer, TruncationLatchesError)
{
    Serializer out;
    out.writeU32(7);
    Deserializer in(out.data());
    EXPECT_EQ(in.readU64(), 0u); // underrun
    EXPECT_FALSE(in.ok());
    EXPECT_EQ(in.readU32(), 0u); // latched: everything reads zero
    EXPECT_NE(in.error().find("truncated"), std::string::npos);
}

TEST(Serializer, BoolRejectsCorruptEncoding)
{
    const std::uint8_t byte = 2;
    Deserializer in(&byte, 1);
    in.readBool();
    EXPECT_FALSE(in.ok());
}

TEST(Serializer, StringRejectsLengthBeyondPayload)
{
    Serializer out;
    out.writeU32(1000); // claims 1000 bytes follow
    out.writeU8('x');
    Deserializer in(out.data());
    EXPECT_EQ(in.readString(), "");
    EXPECT_FALSE(in.ok());
}

// --------------------------------------------------------------------
// Snapshot files
// --------------------------------------------------------------------

class SnapshotFile : public ::testing::Test
{
  protected:
    // Per-test file name: ctest runs each case as its own process
    // (gtest_discover_tests), so concurrent cases sharing one path
    // would clobber each other's images.
    void
    SetUp() override
    {
        path_ = std::string("test_snapshot_file_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".snap";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::vector<std::uint8_t>
    fileBytes() const
    {
        std::ifstream file(path_, std::ios::binary);
        return std::vector<std::uint8_t>(
            std::istreambuf_iterator<char>(file),
            std::istreambuf_iterator<char>());
    }

    void
    writeBytes(const std::vector<std::uint8_t> &bytes) const
    {
        std::ofstream file(path_, std::ios::binary | std::ios::trunc);
        file.write(reinterpret_cast<const char *>(bytes.data()),
                   static_cast<std::streamsize>(bytes.size()));
    }

    std::string path_;
    std::vector<std::uint8_t> payload_ = {10, 20, 30, 40, 50};
};

TEST_F(SnapshotFile, RoundTrip)
{
    const util::Status wrote =
        writeSnapshotFile(path_, kClusterStateKind, payload_);
    ASSERT_TRUE(wrote.ok()) << wrote.message();
    std::vector<std::uint8_t> loaded;
    const util::Status read =
        readSnapshotFile(path_, kClusterStateKind, &loaded);
    ASSERT_TRUE(read.ok()) << read.message();
    EXPECT_EQ(loaded, payload_);
}

TEST_F(SnapshotFile, RejectsTruncatedImage)
{
    ASSERT_TRUE(
        writeSnapshotFile(path_, kClusterStateKind, payload_).ok());
    auto bytes = fileBytes();
    bytes.resize(bytes.size() - 3);
    writeBytes(bytes);

    std::vector<std::uint8_t> loaded;
    const util::Status status =
        readSnapshotFile(path_, kClusterStateKind, &loaded);
    EXPECT_EQ(status.code(), util::StatusCode::kDataLoss)
        << status.message();
    EXPECT_FALSE(status.message().empty());
}

TEST_F(SnapshotFile, RejectsCorruptedPayload)
{
    ASSERT_TRUE(
        writeSnapshotFile(path_, kClusterStateKind, payload_).ok());
    auto bytes = fileBytes();
    bytes[26] ^= 0x40; // inside the payload
    writeBytes(bytes);

    std::vector<std::uint8_t> loaded;
    const util::Status status =
        readSnapshotFile(path_, kClusterStateKind, &loaded);
    EXPECT_EQ(status.code(), util::StatusCode::kDataLoss)
        << status.message();
    EXPECT_NE(status.message().find("CRC"), std::string::npos)
        << status.message();
}

TEST_F(SnapshotFile, RejectsBadMagic)
{
    ASSERT_TRUE(
        writeSnapshotFile(path_, kClusterStateKind, payload_).ok());
    auto bytes = fileBytes();
    bytes[0] = 'X';
    writeBytes(bytes);

    std::vector<std::uint8_t> loaded;
    const util::Status status =
        readSnapshotFile(path_, kClusterStateKind, &loaded);
    EXPECT_EQ(status.code(), util::StatusCode::kDataLoss)
        << status.message();
    EXPECT_NE(status.message().find("magic"), std::string::npos)
        << status.message();
}

TEST_F(SnapshotFile, RejectsWrongFormatVersion)
{
    // Forge an otherwise-valid image (correct CRC) with version + 1:
    // the version check must fire before anything is interpreted.
    ASSERT_TRUE(
        writeSnapshotFile(path_, kClusterStateKind, payload_).ok());
    auto bytes = fileBytes();
    bytes[8] = static_cast<std::uint8_t>(kFormatVersion + 1);
    const std::uint32_t crc = crc32(bytes.data(), bytes.size() - 4);
    for (int i = 0; i < 4; ++i)
        bytes[bytes.size() - 4 + i] =
            static_cast<std::uint8_t>(crc >> (8 * i));
    writeBytes(bytes);

    std::vector<std::uint8_t> loaded;
    const util::Status status =
        readSnapshotFile(path_, kClusterStateKind, &loaded);
    EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition)
        << status.message();
    EXPECT_NE(status.message().find("version"), std::string::npos)
        << status.message();
}

TEST_F(SnapshotFile, RejectsWrongPayloadKind)
{
    ASSERT_TRUE(
        writeSnapshotFile(path_, kSweepStateKind, payload_).ok());
    std::vector<std::uint8_t> loaded;
    const util::Status status =
        readSnapshotFile(path_, kClusterStateKind, &loaded);
    EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition)
        << status.message();
    EXPECT_FALSE(status.message().empty());
}

TEST_F(SnapshotFile, RejectsMissingFile)
{
    std::vector<std::uint8_t> loaded;
    const util::Status status =
        readSnapshotFile("no_such_file.snap", kClusterStateKind,
                         &loaded);
    EXPECT_EQ(status.code(), util::StatusCode::kNotFound)
        << status.message();
    EXPECT_FALSE(status.message().empty());
}

// --------------------------------------------------------------------
// RNG state round-trip
// --------------------------------------------------------------------

TEST(RngSnapshot, StateRoundTripReplaysBitIdentically)
{
    util::Rng rng(12345);
    for (int i = 0; i < 100; ++i)
        rng.next();
    rng.normal(); // buffer a spare normal (Marsaglia polar)

    const util::RngState saved = rng.state();
    std::vector<double> expected;
    for (int i = 0; i < 50; ++i) {
        expected.push_back(rng.uniform());
        expected.push_back(rng.normal());
        expected.push_back(
            static_cast<double>(rng.uniformInt(0, 1000)));
    }

    util::Rng replay(999); // different seed; state overrides it
    replay.setState(saved);
    for (std::size_t i = 0; i < expected.size(); i += 3) {
        EXPECT_EQ(replay.uniform(), expected[i]);
        EXPECT_EQ(replay.normal(), expected[i + 1]);
        EXPECT_EQ(static_cast<double>(replay.uniformInt(0, 1000)),
                  expected[i + 2]);
    }
}

// --------------------------------------------------------------------
// Epoch guard round-trip
// --------------------------------------------------------------------

TEST(EpochGuardSnapshot, RoundTrip)
{
    core::EpochGuardConfig config;
    config.mttSdcYears = 1.0; // small threshold => trips are reachable
    core::EpochGuard guard(config);
    const util::Tick hour = 3600ull * util::kTicksPerSec;
    for (int i = 0; i < 3000000; ++i)
        guard.recordError(hour / 2);

    Serializer out;
    guard.saveState(out);
    core::EpochGuard restored(config);
    Deserializer in(out.data());
    ASSERT_TRUE(restored.restoreState(in));
    EXPECT_EQ(restored.errorsThisEpoch(), guard.errorsThisEpoch());
    EXPECT_EQ(restored.totalErrors(), guard.totalErrors());
    EXPECT_EQ(restored.trips(), guard.trips());
    EXPECT_EQ(restored.tripped(hour / 2), guard.tripped(hour / 2));
}

TEST(EpochGuardSnapshot, RejectsDifferentConfiguration)
{
    core::EpochGuard guard;
    Serializer out;
    guard.saveState(out);

    core::EpochGuardConfig other;
    other.epochLength /= 2;
    core::EpochGuard restored(other);
    Deserializer in(out.data());
    EXPECT_FALSE(restored.restoreState(in));
    EXPECT_NE(in.error().find("epoch"), std::string::npos);
}

// --------------------------------------------------------------------
// Fault-schedule cursor
// --------------------------------------------------------------------

fault::CampaignConfig
smallCampaign(std::uint64_t seed)
{
    fault::CampaignConfig config;
    config.intensity = 1.0;
    config.seed = seed;
    config.horizonSeconds = 7 * 86400.0;
    config.targets = 64;
    config.nodeFailuresPerHour = 1.0e-2;
    config.demotionsPerHour = 1.0e-2;
    return config;
}

TEST(ScheduleCursor, SaveRestoreKeepsPosition)
{
    fault::ScheduleCursor cursor(
        fault::FaultCampaign(smallCampaign(1)).schedule());
    ASSERT_GT(cursor.size(), 4u);
    cursor.advance();
    cursor.advance();

    Serializer out;
    cursor.save(out);
    fault::ScheduleCursor restored(
        fault::FaultCampaign(smallCampaign(1)).schedule());
    Deserializer in(out.data());
    ASSERT_TRUE(restored.restore(in));
    EXPECT_EQ(restored.index(), 2u);
    EXPECT_EQ(restored.nextTimeSeconds(), cursor.nextTimeSeconds());
}

TEST(ScheduleCursor, RejectsDifferentCampaignRealization)
{
    fault::ScheduleCursor cursor(
        fault::FaultCampaign(smallCampaign(1)).schedule());
    Serializer out;
    cursor.save(out);

    fault::ScheduleCursor other(
        fault::FaultCampaign(smallCampaign(2)).schedule());
    Deserializer in(out.data());
    EXPECT_FALSE(other.restore(in));
    EXPECT_NE(in.error().find("campaign"), std::string::npos);
}

// --------------------------------------------------------------------
// Digest trail
// --------------------------------------------------------------------

TEST(DigestTrail, FirstDivergence)
{
    DigestTrail a;
    a.epochSeconds = 100.0;
    a.digests = {1, 2, 3, 4};
    DigestTrail b = a;
    EXPECT_EQ(DigestTrail::firstDivergence(a, b), std::nullopt);

    b.digests[2] = 99;
    EXPECT_EQ(DigestTrail::firstDivergence(a, b),
              std::optional<std::size_t>(2));

    b = a;
    b.digests.pop_back(); // strict prefix: diverges at its length
    EXPECT_EQ(DigestTrail::firstDivergence(a, b),
              std::optional<std::size_t>(3));

    b = a;
    b.epochSeconds = 50.0; // cadence mismatch: nothing comparable
    EXPECT_EQ(DigestTrail::firstDivergence(a, b),
              std::optional<std::size_t>(0));
}

// --------------------------------------------------------------------
// Cluster simulator: save -> resume bit-identity
// --------------------------------------------------------------------

std::vector<traces::Job>
testTrace()
{
    traces::JobTraceModel model;
    model.numJobs = 2000;
    model.systemNodes = 192;
    model.spanSeconds = 10 * 86400.0;
    return traces::GrizzlyTraceGenerator(model, 11).generate();
}

sched::ClusterConfig
testConfig()
{
    sched::ClusterConfig config;
    config.nodes = 192;
    config.heteroDmr = true;
    config.marginAware = true;
    return config;
}

/**
 * Run straight through and via a mid-run save -> restore -> resume,
 * then require bit-identical metrics and digest trails.
 */
void
expectResumeBitIdentical(const sched::ClusterConfig &config,
                         const std::vector<traces::Job> &jobs,
                         double stop_after_seconds)
{
    sched::RunOptions options;
    options.digestEverySeconds = 6 * 3600.0;

    sched::ClusterSimulator straight(config);
    const sched::RunOutcome full = straight.run(jobs, options);
    ASSERT_TRUE(full.completed);
    ASSERT_GT(full.digests.digests.size(), 2u);

    std::vector<std::uint8_t> state;
    sched::RunOptions stopping = options;
    stopping.stopAfterSeconds = stop_after_seconds;
    stopping.snapshotSink =
        [&](const std::vector<std::uint8_t> &bytes) { state = bytes; };
    sched::ClusterSimulator interrupted(config);
    const sched::RunOutcome partial = interrupted.run(jobs, stopping);
    ASSERT_FALSE(partial.completed);
    ASSERT_FALSE(state.empty());

    sched::ClusterSimulator resumed(config);
    const util::Status restored = resumed.restoreState(state, jobs);
    ASSERT_TRUE(restored.ok()) << restored.message();
    const sched::RunOutcome rest = resumed.resume(options);
    ASSERT_TRUE(rest.completed);

    EXPECT_TRUE(sched::metricsIdentical(full.metrics, rest.metrics));
    const auto divergence =
        DigestTrail::firstDivergence(full.digests, rest.digests);
    EXPECT_EQ(divergence, std::nullopt)
        << "replay diverged at digest epoch " << *divergence;
    EXPECT_EQ(full.digests.digests.size(), rest.digests.digests.size());
}

TEST(ClusterSnapshot, ResumeMatchesStraightThroughFaultFree)
{
    expectResumeBitIdentical(testConfig(), testTrace(), 4 * 86400.0);
}

TEST(ClusterSnapshot, ResumeMatchesStraightThroughWithFaults)
{
    // Margin-unaware allocation consumes RNG draws and the fault
    // campaign exercises the schedule cursor, requeues, and
    // checkpointing - the full stochastic surface must survive the
    // round-trip.
    sched::ClusterConfig config = testConfig();
    config.marginAware = false;
    config.faults.intensity = 4.0;
    config.faults.uncorrectablePerHour = 2.0e-4;
    config.faults.nodeFailuresPerHour = 2.0e-5;
    config.faults.demotionsPerHour = 1.0e-4;
    config.faults.horizonSeconds = 10 * 86400.0;
    config.resilience.checkpointIntervalSeconds = 1800.0;
    config.resilience.checkpointOverheadFraction = 0.02;
    expectResumeBitIdentical(config, testTrace(), 5 * 86400.0);
}

TEST(ClusterSnapshot, PeriodicSnapshotsAllRestorable)
{
    const auto jobs = testTrace();
    const sched::ClusterConfig config = testConfig();

    std::vector<std::vector<std::uint8_t>> states;
    sched::RunOptions options;
    options.digestEverySeconds = 86400.0;
    options.snapshotEverySeconds = 2 * 86400.0;
    options.snapshotSink =
        [&](const std::vector<std::uint8_t> &bytes) {
            states.push_back(bytes);
        };
    sched::ClusterSimulator sim(config);
    const sched::RunOutcome full = sim.run(jobs, options);
    ASSERT_TRUE(full.completed);
    ASSERT_GE(states.size(), 3u);

    for (const auto &state : states) {
        sched::ClusterSimulator resumed(config);
        const util::Status restored = resumed.restoreState(state, jobs);
        ASSERT_TRUE(restored.ok()) << restored.message();
        const sched::RunOutcome rest = resumed.resume({});
        EXPECT_TRUE(
            sched::metricsIdentical(full.metrics, rest.metrics));
    }
}

TEST(ClusterSnapshot, RejectsDifferentConfiguration)
{
    const auto jobs = testTrace();
    std::vector<std::uint8_t> state;
    sched::RunOptions options;
    options.stopAfterSeconds = 2 * 86400.0;
    options.snapshotSink =
        [&](const std::vector<std::uint8_t> &bytes) { state = bytes; };
    sched::ClusterSimulator sim(testConfig());
    sim.run(jobs, options);
    ASSERT_FALSE(state.empty());

    sched::ClusterConfig other = testConfig();
    other.speedups.at800 = 1.25;
    sched::ClusterSimulator mismatched(other);
    const util::Status status = mismatched.restoreState(state, jobs);
    EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition)
        << status.message();
    EXPECT_NE(status.message().find("configuration"), std::string::npos)
        << status.message();
}

TEST(ClusterSnapshot, RejectsDifferentTrace)
{
    const auto jobs = testTrace();
    std::vector<std::uint8_t> state;
    sched::RunOptions options;
    options.stopAfterSeconds = 2 * 86400.0;
    options.snapshotSink =
        [&](const std::vector<std::uint8_t> &bytes) { state = bytes; };
    sched::ClusterSimulator sim(testConfig());
    sim.run(jobs, options);

    auto other_jobs = jobs;
    other_jobs[100].runtimeSeconds += 1.0;
    sched::ClusterSimulator resumed(testConfig());
    const util::Status status =
        resumed.restoreState(state, other_jobs);
    EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition)
        << status.message();
    EXPECT_NE(status.message().find("trace"), std::string::npos)
        << status.message();
}

TEST(ClusterSnapshot, FileLevelCorruptionIsRejected)
{
    const auto jobs = testTrace();
    std::vector<std::uint8_t> state;
    sched::RunOptions options;
    options.stopAfterSeconds = 2 * 86400.0;
    options.snapshotSink =
        [&](const std::vector<std::uint8_t> &bytes) { state = bytes; };
    sched::ClusterSimulator sim(testConfig());
    sim.run(jobs, options);
    ASSERT_FALSE(state.empty());

    const std::string path = "test_snapshot_cluster.snap";
    const util::Status wrote =
        sched::ClusterSimulator::writeStateFile(path, state);
    ASSERT_TRUE(wrote.ok()) << wrote.message();

    // Intact file restores.
    sched::ClusterSimulator resumed(testConfig());
    const util::Status restored = resumed.restoreFile(path, jobs);
    ASSERT_TRUE(restored.ok()) << restored.message();

    // Flip one byte in the middle: the CRC must catch it.
    {
        std::fstream file(path, std::ios::binary | std::ios::in |
                                    std::ios::out);
        file.seekp(200);
        char byte = 0;
        file.seekg(200);
        file.get(byte);
        byte = static_cast<char>(byte ^ 0x01);
        file.seekp(200);
        file.put(byte);
    }
    sched::ClusterSimulator corrupt(testConfig());
    const util::Status status = corrupt.restoreFile(path, jobs);
    EXPECT_EQ(status.code(), util::StatusCode::kDataLoss)
        << status.message();
    EXPECT_NE(status.message().find("CRC"), std::string::npos)
        << status.message();
    std::remove(path.c_str());
}

// --------------------------------------------------------------------
// Keeper: last-good generation rotation
// --------------------------------------------------------------------

/** Removes every generation of `keeper` on scope exit. */
struct KeeperCleanup
{
    const Keeper &keeper;
    ~KeeperCleanup()
    {
        for (unsigned g = 0; g < keeper.keep(); ++g)
            std::remove(keeper.generationPath(g).c_str());
    }
};

std::vector<std::uint8_t>
payloadBytes(std::uint8_t tag)
{
    return std::vector<std::uint8_t>(64, tag);
}

TEST(Keeper, GenerationPaths)
{
    const Keeper keeper("run.snap", 3);
    EXPECT_EQ(keeper.generationPath(0), "run.snap");
    EXPECT_EQ(keeper.generationPath(1), "run.snap.1");
    EXPECT_EQ(keeper.generationPath(2), "run.snap.2");
}

TEST(Keeper, SaveRotatesNewestFirst)
{
    const Keeper keeper("test_keeper_rotate.snap", 3);
    const KeeperCleanup cleanup{keeper};
    for (std::uint8_t tag = 1; tag <= 4; ++tag) {
        const util::Status saved =
            keeper.save(kClusterStateKind, payloadBytes(tag));
        ASSERT_TRUE(saved.ok()) << saved.message();
    }

    // After four saves with keep=3, generations hold tags 4, 3, 2;
    // tag 1 rotated off the end.
    for (unsigned g = 0; g < 3; ++g) {
        std::vector<std::uint8_t> payload;
        const util::Status read = readSnapshotFile(
            keeper.generationPath(g), kClusterStateKind, &payload);
        ASSERT_TRUE(read.ok()) << read.message();
        EXPECT_EQ(payload, payloadBytes(static_cast<std::uint8_t>(4 - g)))
            << "generation " << g;
    }
}

TEST(Keeper, LoadLatestValidPrefersGenerationZero)
{
    const Keeper keeper("test_keeper_load.snap", 3);
    const KeeperCleanup cleanup{keeper};
    ASSERT_TRUE(keeper.save(kClusterStateKind, payloadBytes(1)).ok());
    ASSERT_TRUE(keeper.save(kClusterStateKind, payloadBytes(2)).ok());

    const util::Result<Keeper::Loaded> loaded =
        keeper.loadLatestValid(kClusterStateKind);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_EQ(loaded.value().generation, 0u);
    EXPECT_EQ(loaded.value().payload, payloadBytes(2));
    EXPECT_TRUE(loaded.value().skipped.empty());
}

TEST(Keeper, LoadLatestValidSkipsCorruptNewest)
{
    const Keeper keeper("test_keeper_skip.snap", 3);
    const KeeperCleanup cleanup{keeper};
    ASSERT_TRUE(keeper.save(kClusterStateKind, payloadBytes(1)).ok());
    ASSERT_TRUE(keeper.save(kClusterStateKind, payloadBytes(2)).ok());

    // Corrupt generation 0; the walk must fall back to generation 1
    // and report the skip with its structured code.
    {
        std::fstream file(keeper.generationPath(0),
                          std::ios::binary | std::ios::in |
                              std::ios::out);
        file.seekp(40);
        file.put('\x7f');
    }
    const util::Result<Keeper::Loaded> loaded =
        keeper.loadLatestValid(kClusterStateKind);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_EQ(loaded.value().generation, 1u);
    EXPECT_EQ(loaded.value().payload, payloadBytes(1));
    ASSERT_EQ(loaded.value().skipped.size(), 1u);
    EXPECT_EQ(loaded.value().skipped[0].code(),
              util::StatusCode::kDataLoss);
}

TEST(Keeper, LoadLatestValidReportsMissingRotation)
{
    const Keeper keeper("test_keeper_none.snap", 2);
    const util::Result<Keeper::Loaded> loaded =
        keeper.loadLatestValid(kClusterStateKind);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST(Keeper, LoadLatestValidSummarizesTotalLoss)
{
    const Keeper keeper("test_keeper_loss.snap", 2);
    const KeeperCleanup cleanup{keeper};
    ASSERT_TRUE(keeper.save(kClusterStateKind, payloadBytes(1)).ok());
    ASSERT_TRUE(keeper.save(kClusterStateKind, payloadBytes(2)).ok());
    for (unsigned g = 0; g < 2; ++g) {
        std::ofstream file(keeper.generationPath(g),
                           std::ios::binary | std::ios::trunc);
        file << "garbage";
    }
    const util::Result<Keeper::Loaded> loaded =
        keeper.loadLatestValid(kClusterStateKind);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss);
}

// --------------------------------------------------------------------
// Construction-time config validation
// --------------------------------------------------------------------

TEST(ConfigValidation, ClusterConfigRejectsBadFractions)
{
    sched::ClusterConfig config;
    config.groupFractions = {0.5, 0.4, 0.3}; // sums to 1.2
    EXPECT_EXIT(sched::ClusterSimulator sim(config),
                ::testing::ExitedWithCode(1), "groupFractions");
}

TEST(ConfigValidation, ClusterConfigRejectsZeroNodes)
{
    sched::ClusterConfig config;
    config.nodes = 0;
    EXPECT_EXIT(sched::ClusterSimulator sim(config),
                ::testing::ExitedWithCode(1), "nodes");
}

TEST(ConfigValidation, ClusterConfigRejectsZeroBackfillDepth)
{
    sched::ClusterConfig config;
    config.backfillDepth = 0;
    EXPECT_EXIT(sched::ClusterSimulator sim(config),
                ::testing::ExitedWithCode(1), "backfillDepth");
}

TEST(ConfigValidation, SpeedupTableRejectsInvertedSpeedups)
{
    sched::ClusterConfig config;
    config.speedups.at800 = 1.05;
    config.speedups.at600 = 1.15; // faster than the faster group
    EXPECT_EXIT(sched::ClusterSimulator sim(config),
                ::testing::ExitedWithCode(1), "at600");
}

TEST(ConfigValidation, SpeedupTableRejectsNan)
{
    sched::ClusterConfig config;
    config.speedups.at800 = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EXIT(sched::ClusterSimulator sim(config),
                ::testing::ExitedWithCode(1), "at800");
}

TEST(ConfigValidation, ResiliencePolicyRejectsInconsistentBackoff)
{
    sched::ClusterConfig config;
    config.resilience.requeueBackoffBaseSeconds = 7200.0;
    config.resilience.requeueBackoffCapSeconds = 60.0;
    EXPECT_EXIT(sched::ClusterSimulator sim(config),
                ::testing::ExitedWithCode(1),
                "requeueBackoffCapSeconds");
}

TEST(ConfigValidation, ResiliencePolicyRejectsOverheadAboveOne)
{
    sched::ClusterConfig config;
    config.resilience.checkpointOverheadFraction = 1.5;
    EXPECT_EXIT(sched::ClusterSimulator sim(config),
                ::testing::ExitedWithCode(1),
                "checkpointOverheadFraction");
}

TEST(ConfigValidation, CampaignConfigRejectsNegativeRate)
{
    fault::CampaignConfig config;
    config.uncorrectablePerHour = -1.0;
    EXPECT_EXIT(fault::FaultCampaign campaign(config),
                ::testing::ExitedWithCode(1), "uncorrectablePerHour");
}

TEST(ConfigValidation, CampaignConfigRejectsZeroTargets)
{
    fault::CampaignConfig config;
    config.targets = 0;
    EXPECT_EXIT(fault::FaultCampaign campaign(config),
                ::testing::ExitedWithCode(1), "targets");
}

TEST(ConfigValidation, JobTraceModelRejectsInvertedFractions)
{
    traces::JobTraceModel model;
    model.under25Fraction = 0.9;
    model.under50Fraction = 0.5;
    EXPECT_EXIT(traces::GrizzlyTraceGenerator generator(model, 1),
                ::testing::ExitedWithCode(1), "under25Fraction");
}

TEST(ConfigValidation, JobTraceModelRejectsZeroNodes)
{
    traces::JobTraceModel model;
    model.systemNodes = 0;
    EXPECT_EXIT(traces::GrizzlyTraceGenerator generator(model, 1),
                ::testing::ExitedWithCode(1), "systemNodes");
}

TEST(ConfigValidation, JobTraceModelRejectsZeroSpan)
{
    traces::JobTraceModel model;
    model.spanSeconds = 0.0;
    EXPECT_EXIT(traces::GrizzlyTraceGenerator generator(model, 1),
                ::testing::ExitedWithCode(1), "spanSeconds");
}

TEST(ConfigValidation, RunOptionsRejectNonPositiveDigestCadence)
{
    sched::ClusterSimulator sim(testConfig());
    sched::RunOptions options;
    options.digestEverySeconds = 0.0;
    EXPECT_EXIT(sim.run(testTrace(), options),
                ::testing::ExitedWithCode(1), "digestEverySeconds");
}

// --------------------------------------------------------------------
// Degenerate trace models
// --------------------------------------------------------------------

TEST(TraceDegenerate, ZeroJobsYieldEmptyTrace)
{
    traces::JobTraceModel model;
    model.numJobs = 0;
    traces::GrizzlyTraceGenerator generator(model, 3);
    EXPECT_TRUE(generator.generate().empty());
}

TEST(TraceDegenerate, EmptyTraceRunsToCompletion)
{
    sched::ClusterSimulator sim(testConfig());
    const sched::ClusterMetrics metrics = sim.run({});
    EXPECT_EQ(metrics.jobsCompleted, 0u);
    EXPECT_EQ(metrics.meanNodeUtilization, 0.0);
}

} // namespace
