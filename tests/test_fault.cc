/**
 * @file
 * Fault-injection subsystem tests: campaign determinism and nesting,
 * node-layer delivery through the mode controller's fault surface,
 * the quarantine/margin-demotion policy, and cluster-layer kill /
 * requeue / capacity accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/mode_controller.hh"
#include "core/replication.hh"
#include "dram/controller.hh"
#include "fault/campaign.hh"
#include "fault/drift_chaos.hh"
#include "fault/injector.hh"
#include "sched/cluster_sim.hh"
#include "sim/event_queue.hh"
#include "traces/job_trace.hh"
#include "util/status.hh"
#include "util/units.hh"

namespace
{

using namespace hdmr;
using namespace hdmr::fault;

// --------------------------------------------------------------------
// Campaign engine
// --------------------------------------------------------------------

CampaignConfig
channelCampaign(double intensity)
{
    CampaignConfig config;
    config.intensity = intensity;
    config.horizonSeconds = 30.0 * 24 * 3600;
    config.targets = 8;
    // Rates chosen so one campaign expands to a few hundred events:
    // large enough for stable count assertions, small enough to stay
    // fast.
    config.uncorrectablePerHour = 1.0e-2;
    config.burstsPerHour = 2.0e-2;
    config.driftEventsPerHour = 5.0e-3;
    config.excursionsPerHour = 1.0e-2;
    return config;
}

TEST(FaultCampaign, ZeroIntensityIsDisabledAndEmpty)
{
    const auto config = channelCampaign(0.0);
    EXPECT_FALSE(config.enabled());
    EXPECT_TRUE(FaultCampaign(config).schedule().empty());
}

TEST(FaultCampaign, ScheduleIsDeterministicAndTimeSorted)
{
    const auto a = FaultCampaign(channelCampaign(1.0)).schedule();
    const auto b = FaultCampaign(channelCampaign(1.0)).schedule();
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].atSeconds, b[i].atSeconds);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_EQ(a[i].magnitude, b[i].magnitude);
        EXPECT_EQ(a[i].durationSeconds, b[i].durationSeconds);
        if (i > 0) {
            EXPECT_GE(a[i].atSeconds, a[i - 1].atSeconds);
        }
        EXPECT_LT(a[i].atSeconds, channelCampaign(1.0).horizonSeconds);
        EXPECT_LT(a[i].target, 8u);
        if (a[i].kind == FaultKind::kTemperatureExcursion) {
            EXPECT_GT(a[i].durationSeconds, 0.0);
        }
        if (a[i].kind == FaultKind::kErrorBurst) {
            EXPECT_GE(a[i].magnitude, 1.0);
        }
    }
}

TEST(FaultCampaign, IntensityScalesEventCount)
{
    const auto low = FaultCampaign(channelCampaign(1.0)).schedule();
    const auto high = FaultCampaign(channelCampaign(4.0)).schedule();
    EXPECT_GT(low.size(), 0u);
    // Poisson counts at 4x the rate: far more events, with slack for
    // sampling noise.
    EXPECT_GT(high.size(), 2 * low.size());
}

TEST(FaultCampaign, KindStreamsAreIndependent)
{
    // Enabling the other fault kinds must not perturb the UE stream.
    auto only_ue = channelCampaign(1.0);
    only_ue.burstsPerHour = 0.0;
    only_ue.driftEventsPerHour = 0.0;
    only_ue.excursionsPerHour = 0.0;
    const auto isolated = FaultCampaign(only_ue).schedule();

    std::vector<FaultEvent> from_full;
    for (const auto &fault : FaultCampaign(channelCampaign(1.0)).schedule())
        if (fault.kind == FaultKind::kTransientUncorrectable)
            from_full.push_back(fault);

    ASSERT_FALSE(isolated.empty());
    ASSERT_EQ(isolated.size(), from_full.size());
    for (std::size_t i = 0; i < isolated.size(); ++i) {
        EXPECT_EQ(isolated[i].atSeconds, from_full[i].atSeconds);
        EXPECT_EQ(isolated[i].target, from_full[i].target);
    }
}

TEST(FaultCampaign, KillTimesAreNestedAcrossRates)
{
    // One uniform draw per (job, attempt) mapped through the
    // exponential inverse CDF: deterministic, and strictly decreasing
    // in the rate, so higher intensities kill a superset of jobs.
    for (unsigned job = 1; job <= 40; ++job) {
        for (unsigned attempt = 1; attempt <= 3; ++attempt) {
            const double slow =
                FaultCampaign::killTimeSeconds(7, job, attempt, 1.0e-6);
            const double fast =
                FaultCampaign::killTimeSeconds(7, job, attempt, 4.0e-6);
            EXPECT_GT(slow, 0.0);
            EXPECT_LT(fast, slow);
            EXPECT_EQ(slow, FaultCampaign::killTimeSeconds(7, job,
                                                           attempt,
                                                           1.0e-6));
        }
    }
    // Different attempts re-roll; zero rate never kills.
    EXPECT_NE(FaultCampaign::killTimeSeconds(7, 1, 1, 1.0e-6),
              FaultCampaign::killTimeSeconds(7, 1, 2, 1.0e-6));
    EXPECT_TRUE(std::isinf(
        FaultCampaign::killTimeSeconds(7, 1, 1, 0.0)));
}

TEST(FaultAccounting, MergeAndCounterExport)
{
    FaultAccounting a;
    a.injected = 3;
    a.uncorrectable = 1;
    FaultAccounting b;
    b.injected = 2;
    b.excursions = 4;
    a.merge(b);
    const auto counters = a.counters();
    EXPECT_EQ(counters.get("fault.injected"), 5.0);
    EXPECT_EQ(counters.get("fault.uncorrectable"), 1.0);
    EXPECT_EQ(counters.get("fault.excursions"), 4.0);
}

// --------------------------------------------------------------------
// Node-layer delivery and the quarantine policy
// --------------------------------------------------------------------

core::ModeControllerConfig
hdmrChannelConfig()
{
    core::ModeControllerConfig config;
    config.specSetting = dram::MemorySetting::manufacturerSpec();
    config.fastSetting = dram::MemorySetting::exploitFreqLatMargins();
    config.plan = core::ReplicationManager::planChannel(
        core::ReplicationMode::kHeteroDmr);
    return config;
}

TEST(NodeFaultInjector, DeliversEveryChannelScopedKind)
{
    sim::EventQueue events;
    auto mc_config = hdmrChannelConfig();
    auto cc = core::ModeController::buildControllerConfig(mc_config, 1);
    dram::MemoryController controller(events, cc);
    core::ModeController mode(events, controller, nullptr,
                              [](std::uint64_t) { return true; },
                              mc_config);
    int ue_seen = 0;
    mode.setUncorrectableHandler([&ue_seen] { ++ue_seen; });

    std::vector<FaultEvent> schedule;
    schedule.push_back({1.0e-6, FaultKind::kTransientUncorrectable, 0});
    schedule.push_back({2.0e-6, FaultKind::kErrorBurst, 0, 5.0});
    schedule.push_back({3.0e-6, FaultKind::kMarginDrift, 0, 200.0});
    FaultEvent excursion;
    excursion.atSeconds = 4.0e-6;
    excursion.kind = FaultKind::kTemperatureExcursion;
    excursion.durationSeconds = 2.0e-6;
    schedule.push_back(excursion);
    // Cluster-scoped kind: counted, not delivered to a channel.
    schedule.push_back({5.0e-6, FaultKind::kNodeFailure, 0});

    NodeFaultInjector injector(events, {&mode});
    injector.arm(schedule);
    events.run();

    EXPECT_EQ(ue_seen, 1);
    EXPECT_EQ(mode.stats().uncorrectedErrors, 1u);
    EXPECT_EQ(mode.stats().corrections, 5u);
    EXPECT_EQ(mode.stats().marginDriftMts, 200u);
    const auto &acct = injector.accounting();
    EXPECT_EQ(acct.injected, 5u);
    EXPECT_EQ(acct.uncorrectable, 1u);
    EXPECT_EQ(acct.detectedErrors, 5u);
    EXPECT_EQ(acct.marginDriftMts, 200u);
    EXPECT_EQ(acct.excursions, 1u);
    EXPECT_EQ(acct.nodeFailures, 1u);
}

TEST(NodeFaultInjector, HorizonDropsLateEvents)
{
    sim::EventQueue events;
    auto mc_config = hdmrChannelConfig();
    auto cc = core::ModeController::buildControllerConfig(mc_config, 1);
    dram::MemoryController controller(events, cc);
    core::ModeController mode(events, controller, nullptr,
                              [](std::uint64_t) { return true; },
                              mc_config);
    std::vector<FaultEvent> schedule;
    schedule.push_back({1.0e-6, FaultKind::kErrorBurst, 0, 1.0});
    schedule.push_back({1.0, FaultKind::kErrorBurst, 0, 1.0});

    NodeFaultInjector injector(events, {&mode});
    injector.arm(schedule, util::kTicksPerMs);
    events.run();
    EXPECT_EQ(injector.accounting().injected, 1u);
}

TEST(QuarantinePolicy, RepeatedRecoveriesDemoteDownToQuarantine)
{
    sim::EventQueue events;
    auto mc_config = hdmrChannelConfig();
    mc_config.quarantine.demoteAfterRecoveries = 1;
    auto cc = core::ModeController::buildControllerConfig(mc_config, 1);
    dram::MemoryController controller(events, cc);
    core::ModeController mode(events, controller, nullptr,
                              [](std::uint64_t) { return true; },
                              mc_config);

    ASSERT_TRUE(mode.fastOperationEnabled());
    ASSERT_EQ(mode.fastRateMts(), 4000u);

    // Each UE triggers one demotion step: 4000 -> 3800 -> 3600 -> 3400.
    mode.injectUncorrectable();
    EXPECT_EQ(mode.fastRateMts(), 3800u);
    EXPECT_FALSE(mode.fastOperationEnabled()); // re-profiling downtime
    events.run(events.curTick() + util::kTicksPerMs);
    EXPECT_TRUE(mode.fastOperationEnabled());

    mode.injectUncorrectable();
    mode.injectUncorrectable();
    EXPECT_EQ(mode.fastRateMts(), 3400u);
    EXPECT_FALSE(mode.quarantined());

    // 3400 MT/s is the last exploitable step above the 3200 MT/s spec:
    // the next demotion quarantines the channel at specification.
    mode.injectUncorrectable();
    EXPECT_TRUE(mode.quarantined());
    EXPECT_EQ(mode.fastRateMts(), 3200u);
    EXPECT_EQ(mode.stats().demotions, 4u);
    EXPECT_EQ(mode.stats().quarantines, 1u);

    // Quarantined channels never run fast again: no re-enable event
    // fires, and injected bursts are no-ops at specification.
    events.run();
    EXPECT_FALSE(mode.fastOperationEnabled());
    mode.injectDetectedErrors(100);
    EXPECT_EQ(mode.stats().corrections, 0u);
}

TEST(QuarantinePolicy, ConsecutiveEpochTripsDemote)
{
    sim::EventQueue events;
    auto mc_config = hdmrChannelConfig();
    mc_config.epochConfig.mttSdcYears = 1.0e15; // tiny error budget
    mc_config.epochConfig.epochLength = 10 * util::kTicksPerMs;
    mc_config.quarantine.demoteAfterTripStreak = 2;
    auto cc = core::ModeController::buildControllerConfig(mc_config, 1);
    dram::MemoryController controller(events, cc);
    core::ModeController mode(events, controller, nullptr,
                              [](std::uint64_t) { return true; },
                              mc_config);

    // Epoch 0: burst trips the guard; a single trip never demotes.
    mode.injectDetectedErrors(100);
    EXPECT_EQ(mode.stats().epochTrips, 1u);
    EXPECT_EQ(mode.stats().demotions, 0u);

    // Epoch 1 trips too: two consecutive bad epochs demote one step.
    sim::CallbackEvent second_burst(
        [&mode] { mode.injectDetectedErrors(100); });
    events.schedule(&second_burst, 11 * util::kTicksPerMs);
    // Epoch 2 is clean; a trip in epoch 3 restarts the streak at one.
    sim::CallbackEvent late_burst(
        [&mode] { mode.injectDetectedErrors(100); });
    events.schedule(&late_burst, 35 * util::kTicksPerMs);
    events.run(50 * util::kTicksPerMs);

    EXPECT_EQ(mode.stats().epochTrips, 3u);
    EXPECT_EQ(mode.stats().demotions, 1u);
    EXPECT_EQ(mode.fastRateMts(), 3800u);
    EXPECT_FALSE(mode.quarantined());
}

TEST(UncorrectablePath, FailedRecoveryReadsSurfaceThroughController)
{
    sim::EventQueue events;
    auto mc_config = hdmrChannelConfig();
    mc_config.readErrorProbability = 1.0;       // every fast read errors
    mc_config.recoveryFailureProbability = 1.0; // every recovery fails
    auto cc = core::ModeController::buildControllerConfig(mc_config, 1);
    dram::MemoryController controller(events, cc);
    core::ModeController mode(events, controller, nullptr,
                              [](std::uint64_t) { return true; },
                              mc_config);
    int ue_seen = 0;
    mode.setUncorrectableHandler([&ue_seen] { ++ue_seen; });

    for (int i = 0; i < 16; ++i) {
        dram::MemRequest request;
        request.address = 0x100000 + 64 * i;
        controller.enqueueRead(std::move(request));
        events.run(events.curTick() + util::kTicksPerMs);
    }

    EXPECT_EQ(mode.stats().corrections, 16u);
    EXPECT_EQ(mode.stats().uncorrectedErrors, 16u);
    EXPECT_EQ(controller.stats().uncorrectableErrors, 16u);
    EXPECT_EQ(ue_seen, 16);
}

// --------------------------------------------------------------------
// Cluster layer
// --------------------------------------------------------------------

std::vector<traces::Job>
smallTrace()
{
    traces::JobTraceModel model;
    model.numJobs = 3000;
    model.spanSeconds = 7.0 * 24 * 3600;
    model.systemNodes = 200;
    traces::GrizzlyTraceGenerator generator(model, 7);
    return generator.generate();
}

sched::ClusterConfig
smallCluster()
{
    sched::ClusterConfig config;
    config.nodes = 200;
    config.heteroDmr = true;
    config.marginAware = true;
    return config;
}

/** Cluster-layer fault rates, per node-hour at intensity 1. */
void
armClusterFaults(sched::ClusterConfig &config, double intensity)
{
    config.faults.intensity = intensity;
    config.faults.uncorrectablePerHour = 1.0e-3;
    config.faults.horizonSeconds = 7.0 * 24 * 3600;
}

TEST(ClusterFaults, ZeroCampaignReproducesFaultFreeRunExactly)
{
    const auto jobs = smallTrace();
    const auto plain = sched::ClusterSimulator(smallCluster()).run(jobs);

    auto config = smallCluster();
    config.faults.uncorrectablePerHour = 1.0; // armed but intensity 0
    config.faults.nodeFailuresPerHour = 1.0;
    config.faults.demotionsPerHour = 1.0;
    config.resilience.requeueBackoffBaseSeconds = 999.0;
    const auto gated = sched::ClusterSimulator(config).run(jobs);

    EXPECT_EQ(plain.jobsCompleted, gated.jobsCompleted);
    EXPECT_EQ(plain.meanExecSeconds, gated.meanExecSeconds);
    EXPECT_EQ(plain.meanQueueSeconds, gated.meanQueueSeconds);
    EXPECT_EQ(plain.meanTurnaroundSeconds, gated.meanTurnaroundSeconds);
    EXPECT_EQ(plain.meanNodeUtilization, gated.meanNodeUtilization);
    EXPECT_EQ(gated.ueInjected, 0u);
    EXPECT_EQ(gated.jobKills, 0u);
    EXPECT_EQ(gated.requeues, 0u);
    EXPECT_EQ(gated.lostNodeSeconds, 0.0);
}

TEST(ClusterFaults, EveryUeKillsAndRequeuesExactlyOnce)
{
    const auto jobs = smallTrace();
    auto config = smallCluster();
    armClusterFaults(config, 2.0);
    const auto metrics = sched::ClusterSimulator(config).run(jobs);

    EXPECT_GT(metrics.ueInjected, 0u);
    EXPECT_EQ(metrics.ueInjected, metrics.jobKills);
    EXPECT_EQ(metrics.jobKills, metrics.requeues);
    // Killed jobs are requeued, not lost: everything completes.
    EXPECT_EQ(metrics.jobsCompleted, jobs.size());
    EXPECT_EQ(metrics.jobsDropped, 0u);
    EXPECT_GT(metrics.lostNodeSeconds, 0.0);

    const auto counters = metrics.counters();
    EXPECT_EQ(counters.get("cluster.ue_injected"),
              static_cast<double>(metrics.ueInjected));
    EXPECT_EQ(counters.get("cluster.job_kills"),
              static_cast<double>(metrics.jobKills));
    EXPECT_EQ(counters.get("cluster.requeues"),
              static_cast<double>(metrics.requeues));
}

TEST(ClusterFaults, TurnaroundDegradesMonotonicallyWithIntensity)
{
    const auto jobs = smallTrace();
    double previous = 0.0;
    std::uint64_t previous_kills = 0;
    for (const double intensity : {0.0, 2.0, 8.0}) {
        auto config = smallCluster();
        armClusterFaults(config, intensity);
        const auto metrics = sched::ClusterSimulator(config).run(jobs);
        if (intensity > 0.0) {
            EXPECT_GT(metrics.meanTurnaroundSeconds, previous);
            EXPECT_GT(metrics.jobKills, previous_kills);
        }
        previous = metrics.meanTurnaroundSeconds;
        previous_kills = metrics.jobKills;
    }
}

TEST(ClusterFaults, CheckpointingSalvagesLostWork)
{
    const auto jobs = smallTrace();
    auto config = smallCluster();
    armClusterFaults(config, 8.0);
    const auto bare = sched::ClusterSimulator(config).run(jobs);

    config.resilience.checkpointIntervalSeconds = 1800.0;
    config.resilience.checkpointOverheadFraction = 0.02;
    const auto ckpt = sched::ClusterSimulator(config).run(jobs);

    EXPECT_GT(bare.lostNodeSeconds, 0.0);
    EXPECT_LT(ckpt.lostNodeSeconds, bare.lostNodeSeconds);
    EXPECT_GT(ckpt.checkpointOverheadSeconds, 0.0);
    EXPECT_EQ(ckpt.jobsCompleted, jobs.size());
}

TEST(ClusterFaults, FailuresAndDemotionsReshapeTheMachine)
{
    const auto jobs = smallTrace();
    const auto plain = sched::ClusterSimulator(smallCluster()).run(jobs);

    auto config = smallCluster();
    config.faults.intensity = 1.0;
    config.faults.nodeFailuresPerHour = 1.0e-3;
    config.faults.demotionsPerHour = 4.0e-3;
    config.faults.horizonSeconds = 7.0 * 24 * 3600;
    const auto metrics = sched::ClusterSimulator(config).run(jobs);

    EXPECT_GT(metrics.nodesFailed, 0u);
    EXPECT_GT(metrics.nodesDemoted, 0u);
    // Every job either completes on the surviving capacity or is
    // dropped because no surviving partition can ever hold it.
    EXPECT_EQ(metrics.jobsCompleted + metrics.jobsDropped, jobs.size());
    // Fewer, slower nodes can only hurt mean turnaround.
    EXPECT_GT(metrics.meanTurnaroundSeconds,
              plain.meanTurnaroundSeconds);
}

// --------------------------------------------------------------------
// Drift chaos campaign
// --------------------------------------------------------------------

DriftScenarioConfig
driftScenario()
{
    DriftScenarioConfig scenario;
    scenario.drift.seed = 0xd21f7u;
    scenario.drift.modules = 3;
    scenario.drift.horizonHours = 1100.0;
    scenario.drift.agingMtsPerKiloHour = 1000.0;
    scenario.drift.agingSigma = 0.0; // every module at the median rate
    scenario.drift.diurnalAmplitudeC = 12.0;
    scenario.drift.spikesPerKiloHour = 3.0;
    scenario.marginStepMts = 200.0;
    scenario.targetsPerModule = 2;
    scenario.excursionThresholdC = 10.0;
    scenario.spikeBurstErrors = 50.0;
    return scenario;
}

bool
sameEvent(const FaultEvent &a, const FaultEvent &b)
{
    return a.atSeconds == b.atSeconds && a.kind == b.kind &&
           a.target == b.target && a.magnitude == b.magnitude &&
           a.durationSeconds == b.durationSeconds;
}

TEST(DriftChaos, ScheduleIsDeterministic)
{
    const DriftChaosCampaign a(driftScenario());
    const DriftChaosCampaign b(driftScenario());
    ASSERT_EQ(a.schedule().size(), b.schedule().size());
    for (size_t i = 0; i < a.schedule().size(); ++i)
        EXPECT_TRUE(sameEvent(a.schedule()[i], b.schedule()[i]));
    EXPECT_EQ(a.model().digest(), b.model().digest());
    EXPECT_TRUE(std::is_sorted(a.schedule().begin(), a.schedule().end(),
                               [](const FaultEvent &x,
                                  const FaultEvent &y) {
                                   return x.atSeconds < y.atSeconds;
                               }));
}

TEST(DriftChaos, MarginCrossingsMatchTheAnalyticCurve)
{
    // With agingSigma = 0 every module erodes at exactly the median
    // rate, so erosion(h) = 1000 * (h/1000) crosses k * 200 MT/s at
    // h = 200 k hours: five crossings inside 1100 h, fanned out to
    // each of the module's schedule targets.
    const auto scenario = driftScenario();
    const DriftChaosCampaign chaos(scenario);
    const auto crossings = chaos.schedule(FaultKind::kMarginDrift);
    ASSERT_EQ(crossings.size(), static_cast<size_t>(
                                    5 * scenario.drift.modules *
                                    scenario.targetsPerModule));
    for (const FaultEvent &ev : crossings) {
        const double hour = ev.atSeconds / 3600.0;
        const double steps = hour / 200.0;
        EXPECT_NEAR(steps, std::round(steps), 1e-9);
        EXPECT_DOUBLE_EQ(ev.magnitude, scenario.marginStepMts);
        EXPECT_LT(ev.target, scenario.drift.modules *
                                 scenario.targetsPerModule);
    }
}

TEST(DriftChaos, ExcursionWindowsAreFleetWideAndBounded)
{
    const auto scenario = driftScenario();
    const DriftChaosCampaign chaos(scenario);
    const auto windows =
        chaos.schedule(FaultKind::kTemperatureExcursion);
    ASSERT_FALSE(windows.empty());
    for (const FaultEvent &ev : windows) {
        EXPECT_EQ(ev.target, 0u);
        EXPECT_GT(ev.durationSeconds, 0.0);
        EXPECT_LE(ev.atSeconds + ev.durationSeconds,
                  scenario.drift.horizonHours * 3600.0 + 1e-6);
    }

    // Raising the threshold above the diurnal amplitude closes every
    // window.
    auto cool = scenario;
    cool.excursionThresholdC = scenario.drift.diurnalAmplitudeC + 1.0;
    const DriftChaosCampaign quiet(cool);
    EXPECT_TRUE(
        quiet.schedule(FaultKind::kTemperatureExcursion).empty());
}

TEST(DriftChaos, ClusterScheduleMapsKindsForTheClusterLayer)
{
    const DriftChaosCampaign chaos(driftScenario());
    const auto cluster = chaos.clusterSchedule();
    const auto drifts = chaos.schedule(FaultKind::kMarginDrift);
    const auto windows =
        chaos.schedule(FaultKind::kTemperatureExcursion);
    EXPECT_EQ(cluster.size(), drifts.size() + windows.size());

    size_t demotions = 0;
    for (const FaultEvent &ev : cluster) {
        // Bursts have no cluster-layer consumer and must not leak.
        ASSERT_NE(ev.kind, FaultKind::kErrorBurst);
        if (ev.kind == FaultKind::kGroupDemotion) {
            EXPECT_DOUBLE_EQ(ev.magnitude, 1.0); // one margin group
            ++demotions;
        } else {
            ASSERT_EQ(ev.kind, FaultKind::kTemperatureExcursion);
        }
    }
    EXPECT_EQ(demotions, drifts.size());
}

TEST(DriftChaos, ComposeWithMergesTimeSorted)
{
    const DriftChaosCampaign chaos(driftScenario());
    const FaultCampaign base(channelCampaign(1.0));
    const auto merged = chaos.composeWith(base);
    EXPECT_EQ(merged.size(),
              base.schedule().size() + chaos.schedule().size());
    EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(),
                               [](const FaultEvent &a,
                                  const FaultEvent &b) {
                                   return a.atSeconds < b.atSeconds;
                               }));
}

TEST(DriftChaos, ValidateRejectsBadScenario)
{
    const auto expect_invalid = [](const util::Status &status,
                                   const char *field) {
        EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument)
            << status.message();
        EXPECT_NE(status.message().find(field), std::string::npos)
            << status.message();
    };
    DriftScenarioConfig scenario = driftScenario();
    scenario.marginStepMts = 0.0;
    expect_invalid(scenario.validate(), "marginStepMts");
    scenario = driftScenario();
    scenario.targetsPerModule = 0;
    expect_invalid(scenario.validate(), "targetsPerModule");
    scenario = driftScenario();
    scenario.excursionThresholdC = -1.0;
    expect_invalid(scenario.validate(), "excursionThresholdC");
    scenario = driftScenario();
    scenario.spikeBurstErrors =
        -std::numeric_limits<double>::infinity();
    expect_invalid(scenario.validate(), "spikeBurstErrors");
    // Construction still dies on a bad scenario (checkOk at the CLI
    // boundary).
    scenario = driftScenario();
    scenario.marginStepMts = 0.0;
    EXPECT_EXIT(DriftChaosCampaign campaign(scenario),
                ::testing::ExitedWithCode(1), "marginStepMts");
}

} // namespace
