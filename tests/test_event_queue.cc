/**
 * @file
 * Tests for the discrete-event kernel: ordering, same-tick FIFO,
 * deschedule/reschedule semantics, run limits, and wrappers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "util/rng.hh"

namespace
{

using namespace hdmr::sim;

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    CallbackEvent a([&] { order.push_back(1); });
    CallbackEvent b([&] { order.push_back(2); });
    CallbackEvent c([&] { order.push_back(3); });
    q.schedule(&c, 300);
    q.schedule(&a, 100);
    q.schedule(&b, 200);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 300u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    CallbackEvent a([&] { order.push_back(1); });
    CallbackEvent b([&] { order.push_back(2); });
    CallbackEvent c([&] { order.push_back(3); });
    q.schedule(&a, 50);
    q.schedule(&b, 50);
    q.schedule(&c, 50);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue q;
    int fired = 0;
    CallbackEvent a([&] { ++fired; });
    q.schedule(&a, 10);
    EXPECT_TRUE(a.scheduled());
    q.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    q.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue q;
    std::vector<Tick> fire_times;
    CallbackEvent a([&] { fire_times.push_back(q.curTick()); });
    q.schedule(&a, 10);
    q.reschedule(&a, 99);
    q.run();
    EXPECT_EQ(fire_times, (std::vector<Tick>{99}));
}

TEST(EventQueue, RescheduleUnscheduledActsAsSchedule)
{
    EventQueue q;
    int fired = 0;
    CallbackEvent a([&] { ++fired; });
    q.reschedule(&a, 5);
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventCanRescheduleItself)
{
    EventQueue q;
    int count = 0;
    CallbackEvent tick;
    tick.setCallback([&] {
        if (++count < 5)
            q.scheduleIn(&tick, 10);
    });
    q.schedule(&tick, 0);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.curTick(), 40u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue q;
    int fired = 0;
    CallbackEvent a([&] { ++fired; });
    CallbackEvent b([&] { ++fired; });
    q.schedule(&a, 100);
    q.schedule(&b, 200);
    q.run(150);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NextTickSkipsStaleEntries)
{
    EventQueue q;
    CallbackEvent a([] {});
    CallbackEvent b([] {});
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.deschedule(&a);
    EXPECT_EQ(q.nextTick(), 20u);
    EXPECT_EQ(q.size(), 1u);
    q.deschedule(&b); // events must not be destroyed while scheduled
}

TEST(EventQueue, NumProcessedCounts)
{
    EventQueue q;
    CallbackEvent a([] {});
    CallbackEvent b([] {});
    q.schedule(&a, 1);
    q.schedule(&b, 2);
    q.run();
    EXPECT_EQ(q.numProcessed(), 2u);
}

class Counter
{
  public:
    void bump() { ++count; }
    int count = 0;
};

TEST(EventQueue, MemberFunctionWrapper)
{
    EventQueue q;
    Counter counter;
    EventWrapper<Counter, &Counter::bump> ev(&counter);
    q.schedule(&ev, 7);
    q.run();
    EXPECT_EQ(counter.count, 1);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    std::vector<Tick> fired;
    std::vector<std::unique_ptr<CallbackEvent>> events;
    hdmr::util::Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        auto ev = std::make_unique<CallbackEvent>(
            [&] { fired.push_back(q.curTick()); });
        q.schedule(ev.get(), rng.uniformInt(0, 100000));
        events.push_back(std::move(ev));
    }
    q.run();
    ASSERT_EQ(fired.size(), 2000u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

} // namespace
