/**
 * @file
 * HPC campaign planning: replay a month of your cluster's job load
 * and quantify what deploying Hetero-DMR (plus the margin-aware
 * scheduler) would buy in execution, queueing and turnaround time.
 *
 *   ./build/examples/hpc_campaign [nodes] [jobs]
 */

#include <cstdio>
#include <cstdlib>

#include "sched/cluster_sim.hh"
#include "traces/job_trace.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace hdmr;

    traces::JobTraceModel model;
    model.systemNodes =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 512;
    model.numJobs =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2]))
                 : 15000;
    model.spanSeconds = 30.0 * 86400; // one month

    traces::GrizzlyTraceGenerator generator(model, 7);
    const auto jobs = generator.generate();
    std::printf("campaign: %zu jobs on %u nodes over 30 days "
                "(offered load %.0f%%)\n\n",
                jobs.size(), model.systemNodes,
                100.0 * traces::traceNodeSeconds(jobs) /
                    (model.systemNodes * model.spanSeconds));

    auto simulate = [&](bool hdmr, bool aware) {
        sched::ClusterConfig config;
        config.nodes = model.systemNodes;
        config.heteroDmr = hdmr;
        config.marginAware = aware;
        sched::ClusterSimulator sim(config);
        return sim.run(jobs);
    };

    const auto conventional = simulate(false, false);
    const auto hdmr = simulate(true, true);
    const auto hdmr_default = simulate(true, false);

    util::Table table({"deployment", "mean exec (h)", "mean queue (h)",
                       "mean turnaround (h)"});
    auto add = [&](const char *label,
                   const sched::ClusterMetrics &m) {
        table.row()
            .cell(label)
            .cell(m.meanExecSeconds / 3600.0, 2)
            .cell(m.meanQueueSeconds / 3600.0, 2)
            .cell(m.meanTurnaroundSeconds / 3600.0, 2);
    };
    add("conventional", conventional);
    add("Hetero-DMR + margin-aware", hdmr);
    add("Hetero-DMR + default sched", hdmr_default);
    table.print();

    std::printf("\nturnaround speedup with Hetero-DMR: %.2fx "
                "(margin-aware scheduling worth %.2fx of it)\n",
                conventional.meanTurnaroundSeconds /
                    hdmr.meanTurnaroundSeconds,
                hdmr_default.meanTurnaroundSeconds /
                    hdmr.meanTurnaroundSeconds);
    return 0;
}
