/**
 * @file
 * Reliability lab: poke at the machinery that lets Hetero-DMR run
 * memory out of spec without losing data - Bamboo ECC in
 * detection-only mode, address folding, and the SDC epoch budget.
 *
 *   ./build/examples/reliability_lab
 */

#include <cstdio>

#include "core/epoch_guard.hh"
#include "core/mode_controller.hh"
#include "ecc/bamboo.hh"
#include "ecc/error_inject.hh"
#include "fault/campaign.hh"
#include "fault/injector.hh"
#include "util/rng.hh"

int
main()
{
    using namespace hdmr;
    using namespace hdmr::ecc;

    BambooCodec codec;
    util::Rng rng(2026);

    // A block as Hetero-DMR stores it: 64 data bytes + 8 RS parity
    // bytes computed over data *and* the block address.
    Block data;
    for (auto &byte : data)
        byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    const std::uint64_t address = 0x7f8000;
    const CodedBlock stored = codec.encode(data, address);
    std::printf("encoded block @0x%llx, parity:",
                static_cast<unsigned long long>(address));
    for (const auto p : stored.parity)
        std::printf(" %02x", p);
    std::printf("\n\n");

    // 1. The unsafely-fast copy path: detection-only decode catches
    //    everything up to 8 corrupted bytes with certainty.
    for (const unsigned width : {1u, 4u, 8u, 24u}) {
        CodedBlock corrupt = stored;
        corruptBytes(corrupt, width, rng);
        const auto result = codec.decodeDetectOnly(corrupt, address);
        std::printf("detect-only, %2u corrupted bytes -> %s\n", width,
                    result.errorDetected() ? "DETECTED (recover from "
                                             "original module)"
                                           : "missed");
    }

    // 2. Address folding: a response for the wrong address is an
    //    error even with pristine data.
    const auto wrong =
        codec.decodeDetectOnly(stored, address ^ 0x40);
    std::printf("address-bit flip          -> %s\n\n",
                wrong.errorDetected() ? "DETECTED" : "missed");

    // 3. The original-block path: conventional correcting decode.
    CodedBlock correctable = stored;
    corruptBytes(correctable, 3, rng);
    const auto fixed = codec.decodeCorrecting(correctable, address);
    std::printf("correcting decode, 3 bad bytes -> %s (%u symbols "
                "repaired, data intact: %s)\n",
                fixed.status == DecodeStatus::kCorrected ? "CORRECTED"
                                                         : "failed",
                fixed.correctedSymbols,
                correctable.data == data ? "yes" : "NO");

    // 4. The epoch budget: how many detected 8B+ errors per hour
    //    Hetero-DMR tolerates before slowing to spec, for a one-
    //    billion-year mean time to SDC.
    core::EpochGuardConfig guard;
    std::printf("\nSDC escape probability per detected 8B+ error: "
                "2^-64 = %.3g\n",
                BambooCodec::escapeProbability8BPlus());
    std::printf("epoch error budget for a 1e9-year MTT-SDC: %llu "
                "errors/hour (paper: ~2,100,000)\n",
                static_cast<unsigned long long>(guard.errorThreshold()));

    // 5. When the margin assumption itself breaks: a seeded fault
    //    campaign delivers UEs to a channel whose quarantine policy
    //    demotes it 200 MT/s per recovery event until it is parked at
    //    specification for good.
    sim::EventQueue events;
    core::ModeControllerConfig mc_config;
    mc_config.specSetting = dram::MemorySetting::manufacturerSpec();
    mc_config.fastSetting = dram::MemorySetting::exploitFreqLatMargins();
    mc_config.plan = core::ReplicationManager::planChannel(
        core::ReplicationMode::kHeteroDmr);
    mc_config.quarantine.demoteAfterRecoveries = 2;
    auto cc = core::ModeController::buildControllerConfig(mc_config, 1);
    dram::MemoryController controller(events, cc);
    core::ModeController mode(events, controller, nullptr,
                              [](std::uint64_t) { return true; },
                              mc_config);

    fault::CampaignConfig campaign;
    campaign.intensity = 1.0;
    campaign.horizonSeconds = 1.0e-3; // a short, violent demo window
    campaign.uncorrectablePerHour = 4.0e7;
    campaign.burstsPerHour = 2.0e7;
    fault::NodeFaultInjector injector(events, {&mode});
    injector.arm(fault::FaultCampaign(campaign).schedule());

    std::printf("\nfault campaign vs one channel (demote after 2 "
                "recoveries):\n  fast setting before: %u MT/s\n",
                mode.fastRateMts());
    events.run();
    std::printf("  injected %llu faults (%llu UEs) -> %llu demotions, "
                "%llu quarantine\n",
                static_cast<unsigned long long>(
                    injector.accounting().injected),
                static_cast<unsigned long long>(
                    injector.accounting().uncorrectable),
                static_cast<unsigned long long>(mode.stats().demotions),
                static_cast<unsigned long long>(
                    mode.stats().quarantines));
    std::printf("  fast setting after: %u MT/s (%s)\n",
                mode.fastRateMts(),
                mode.quarantined() ? "quarantined - never runs fast "
                                     "again"
                                   : "still exploiting margin");
    return 0;
}
