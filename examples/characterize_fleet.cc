/**
 * @file
 * Fleet characterization: reproduce the paper's Section II workflow
 * on a fleet you define - sweep each module's data rate on a test
 * machine, measure frequency margins, stress-test at the margin edge,
 * and decide margin groups for deployment.
 *
 *   ./build/examples/characterize_fleet [modules] [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "core/replication.hh"
#include "margin/monte_carlo.hh"
#include "margin/population.hh"
#include "margin/test_machine.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace hdmr;
    using namespace hdmr::margin;

    const std::size_t count =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
    const std::uint64_t seed =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    // A procurement batch: 3200 MT/s dual-rank RDIMMs, 9 chips/rank,
    // from a major brand.
    ModuleSpec spec;
    spec.brand = Brand::kA;
    spec.specRateMts = 3200;
    spec.chipsPerRank = 9;
    ModulePopulation population(seed);
    const auto fleet = population.sampleFleet(spec, count);

    TestMachine machine(TestMachineConfig{}, seed + 1);

    std::printf("Characterizing %zu modules (spec %u MT/s)...\n\n",
                fleet.size(), spec.specRateMts);
    util::Table table({"module", "max error-free rate", "margin",
                       "errors/hr at edge"});
    util::RunningStats margins;
    for (const auto &module : fleet) {
        const auto measurement = machine.characterize(module);
        const auto edge = machine.stressAtMarginEdge(module);
        margins.add(static_cast<double>(measurement.marginMts()));
        table.row()
            .cell(module.name())
            .cell(std::to_string(measurement.measuredMaxRateMts) +
                  " MT/s")
            .cell(std::to_string(measurement.marginMts()) + " MT/s")
            .cell(edge ? util::formatDouble(
                             static_cast<double>(edge->totalErrors()),
                             0)
                       : std::string("no boot"));
    }
    table.print();

    std::printf("\nfleet margin: mean %.0f MT/s (%.0f%% of spec), "
                "stdev %.0f, min %.0f\n",
                margins.mean(), 100.0 * margins.mean() / 3200.0,
                margins.stdev(), margins.min());

    // What Hetero-DMR would do with these modules: margin-aware
    // channel pairing and the resulting node margin.
    std::vector<unsigned> channel_margins;
    TestMachine pairing_machine(TestMachineConfig{}, seed + 2);
    for (std::size_t i = 0; i + 1 < fleet.size(); i += 2) {
        const unsigned a =
            pairing_machine.characterize(fleet[i]).marginMts();
        const unsigned b =
            pairing_machine.characterize(fleet[i + 1]).marginMts();
        channel_margins.push_back(
            core::ReplicationManager::channelMargin({a, b}));
    }
    const unsigned node_margin =
        core::ReplicationManager::nodeMargin(channel_margins);
    std::printf("paired into %zu channels -> node-level margin "
                "%u MT/s (Free Module chosen margin-aware)\n",
                channel_margins.size(), node_margin);
    return 0;
}
