/**
 * @file
 * Quickstart: simulate one HPC node with and without Hetero-DMR and
 * print the speedup.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [benchmark]
 */

#include <cstdio>
#include <string>

#include "node/config.hh"
#include "node/node_system.hh"

int
main(int argc, char **argv)
{
    using namespace hdmr;
    using namespace hdmr::node;

    const std::string benchmark = argc > 1 ? argv[1] : "hpcg";

    // 1. Describe the node: Memory Hierarchy 1 of the paper (8 cores,
    //    one DDR4-3200 channel with two dual-rank RDIMMs).
    NodeConfig config;
    config.hierarchy = HierarchyConfig::hierarchy1();
    config.workload = wl::benchmarkByName(benchmark);
    config.memOpsPerCore = 40000;

    // 2. Run the conventional (Commercial Baseline) system.
    config.memorySystem = MemorySystemKind::kCommercialBaseline;
    const NodeStats baseline = NodeSystem(config).run();

    // 3. Run the same node with Hetero-DMR: memory utilization is
    //    below 50 %, so every block is replicated into the free
    //    module, which then serves reads unsafely fast (0.8 GT/s
    //    above specification) while originals stay safe.
    config.memorySystem = MemorySystemKind::kHeteroDmr;
    config.nodeMarginMts = 800;
    config.usage = core::MemoryUsage::kUnder50;
    const NodeStats hdmr = NodeSystem(config).run();

    std::printf("benchmark            : %s\n", benchmark.c_str());
    std::printf("baseline exec        : %.3f ms  (bus util %.0f%%, "
                "avg read latency %.0f ns)\n",
                baseline.execSeconds * 1e3,
                100.0 * baseline.busUtilization,
                baseline.avgReadLatencyNs);
    std::printf("Hetero-DMR exec      : %.3f ms  (bus util %.0f%%, "
                "avg read latency %.0f ns)\n",
                hdmr.execSeconds * 1e3, 100.0 * hdmr.busUtilization,
                hdmr.avgReadLatencyNs);
    std::printf("speedup              : %.2fx\n",
                baseline.execSeconds / hdmr.execSeconds);
    std::printf("broadcast writes     : %llu bus transactions "
                "updating %llu rank copies\n",
                static_cast<unsigned long long>(hdmr.dramWrites),
                static_cast<unsigned long long>(hdmr.dramWriteRankOps));
    std::printf("detected-error fixes : %llu (recovered from the "
                "safely-operated originals)\n",
                static_cast<unsigned long long>(hdmr.corrections));
    std::printf("energy per instr     : %.1f nJ vs %.1f nJ baseline\n",
                hdmr.energy.epiNj, baseline.energy.epiNj);
    return 0;
}
